//! Failure patterns: the function `F` of the paper's model (§2.1).

use crate::{ProcessId, ProcessSet, Time};
use std::fmt;

/// A failure pattern `F`: for each time `t`, the set of processes that have
/// crashed **by** time `t`.
///
/// Crashes are permanent (crash-stop), so `F` is fully described by one
/// optional crash time per process. A process with no crash time is
/// *correct* in the pattern; `Correct(F)` is [`FailurePattern::correct`].
///
/// Following the paper, a process crashed at time `t` no longer takes steps
/// at any time `t' > t`; the step *at* `t` itself is still allowed (the
/// proofs use "crash right after time `t`", which is `crash_at(p, t)` here:
/// alive at `t`, crashed at `t + 1`).
///
/// # Example
///
/// ```
/// use sih_model::{FailurePattern, ProcessId, Time};
/// let f = FailurePattern::builder(4)
///     .crash_at(ProcessId(1), Time(10))
///     .build();
/// assert!(f.is_alive(ProcessId(1), Time(10)));
/// assert!(!f.is_alive(ProcessId(1), Time(11)));
/// assert_eq!(f.correct().len(), 3);
/// assert!(f.has_correct_process());
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct FailurePattern {
    n: usize,
    crash_at: Vec<Option<Time>>,
}

// Manual Clone so `clone_from` (used by `Simulation::reset` and the
// exhaustive explorer's per-edge state copies) reuses the crash-time
// vector instead of reallocating it.
impl Clone for FailurePattern {
    fn clone(&self) -> Self {
        FailurePattern { n: self.n, crash_at: self.crash_at.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.crash_at.clone_from(&source.crash_at);
    }
}

impl FailurePattern {
    /// Starts building a pattern over `n` processes (all correct unless
    /// crashes are added).
    ///
    /// Patterns themselves have no size cap (the scaling tier runs
    /// `n = 10⁶`); only the [`ProcessSet`]-returning views ([`Self::all`],
    /// [`Self::correct`], …) stay limited to
    /// [`ProcessSet::MAX_PROCESSES`] — large-`n` callers use the scalar
    /// accessors ([`Self::is_correct`], [`Self::correct_count`]) instead.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn builder(n: usize) -> FailurePatternBuilder {
        assert!(n > 0, "a system has at least one process");
        FailurePatternBuilder { pattern: FailurePattern { n, crash_at: vec![None; n] } }
    }

    /// The failure-free pattern over `n` processes.
    pub fn all_correct(n: usize) -> FailurePattern {
        Self::builder(n).build()
    }

    /// A pattern in which exactly the processes of `crashed` are crashed
    /// from the very beginning (time `0`); all others are correct.
    pub fn crashed_from_start(n: usize, crashed: ProcessSet) -> FailurePattern {
        let mut b = Self::builder(n);
        for p in crashed {
            b = b.crash_from_start(p);
        }
        b.build()
    }

    /// Number of processes `n = |Π|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full process set `Π`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`ProcessSet::MAX_PROCESSES`]; large-`n`
    /// code iterates `0..n` directly instead of materializing `Π`.
    #[inline]
    pub fn all(&self) -> ProcessSet {
        ProcessSet::full(self.n)
    }

    /// `Correct(F)`: processes that never crash.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`ProcessSet::MAX_PROCESSES`]; large-`n`
    /// code uses [`Self::correct_count`] / [`Self::is_correct`].
    pub fn correct(&self) -> ProcessSet {
        (0..self.n as u32).map(ProcessId).filter(|p| self.is_correct(*p)).collect()
    }

    /// `|Correct(F)|`, at any `n`. One O(n) scan; callers that need it
    /// per step cache the result (the engine does).
    pub fn correct_count(&self) -> usize {
        self.crash_at.iter().filter(|c| c.is_none()).count()
    }

    /// The smallest correct process, at any `n` (every environment of the
    /// paper guarantees one exists; returns `None` only for
    /// [`FailurePatternBuilder::build_unchecked`] patterns without one).
    pub fn first_correct(&self) -> Option<ProcessId> {
        self.crash_at.iter().position(Option::is_none).map(|i| ProcessId(i as u32))
    }

    /// The faulty processes `Π \ Correct(F)`.
    pub fn faulty(&self) -> ProcessSet {
        self.all().difference(self.correct())
    }

    /// Whether `p ∈ Correct(F)`.
    #[inline]
    pub fn is_correct(&self, p: ProcessId) -> bool {
        self.crash_at.get(p.index()).is_some_and(|c| c.is_none())
    }

    /// The crash time of `p`: the last time at which `p` may take a step.
    /// `None` means `p` is correct.
    #[inline]
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash_at.get(p.index()).copied().flatten()
    }

    /// Whether `p` may still take a step at time `t` (i.e. `p ∉ F(t)` with
    /// the "crash right after" reading documented on the type).
    #[inline]
    pub fn is_alive(&self, p: ProcessId, t: Time) -> bool {
        match self.crash_time(p) {
            None => p.index() < self.n,
            Some(c) if c == FROM_START => false,
            Some(c) => t <= c,
        }
    }

    /// `F(t)`: the set of processes crashed by time `t`.
    pub fn crashed_by(&self, t: Time) -> ProcessSet {
        (0..self.n as u32).map(ProcessId).filter(|p| !self.is_alive(*p, t)).collect()
    }

    /// The set of processes alive at time `t` (complement of `F(t)`).
    pub fn alive_at(&self, t: Time) -> ProcessSet {
        self.all().difference(self.crashed_by(t))
    }

    /// Whether at least one process is correct — the paper only considers
    /// failure patterns with this property (environment `E`).
    #[inline]
    pub fn has_correct_process(&self) -> bool {
        self.crash_at.iter().any(Option::is_none)
    }

    /// Whether a majority of processes is correct (`|Correct| > n/2`), the
    /// environment in which `Σ` is implementable without synchrony (§2.2).
    #[inline]
    pub fn has_correct_majority(&self) -> bool {
        self.correct_count() * 2 > self.n
    }

    /// The last finite crash time in the pattern, or `Time::ZERO` if none.
    ///
    /// After this time the alive set equals `Correct(F)`; oracle detectors
    /// use it to place their stabilization point.
    pub fn last_crash_time(&self) -> Time {
        self.crash_at
            .iter()
            .filter_map(|c| *c)
            .filter(|&c| c != FROM_START)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

impl fmt::Debug for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FailurePattern(n={}, crashes=[", self.n)?;
        let mut first = true;
        for (i, c) in self.crash_at.iter().enumerate() {
            if let Some(t) = c {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "p{i}@{t}")?;
            }
        }
        write!(f, "])")
    }
}

/// Builder for [`FailurePattern`] (see [`FailurePattern::builder`]).
#[derive(Clone, Debug)]
pub struct FailurePatternBuilder {
    pattern: FailurePattern,
}

impl FailurePatternBuilder {
    /// Crashes `p` *right after* time `t`: `p` is alive at `t` and crashed
    /// at every `t' > t`. This matches the proofs' phrase "crash right
    /// after time `t`".
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn crash_at(mut self, p: ProcessId, t: Time) -> Self {
        assert!(p.index() < self.pattern.n, "process out of range");
        self.pattern.crash_at[p.index()] = Some(t);
        self
    }

    /// Crashes `p` from the very beginning: `p` never takes a step.
    pub fn crash_from_start(mut self, p: ProcessId) -> Self {
        assert!(p.index() < self.pattern.n, "process out of range");
        // Alive only "before time zero", i.e. never: we encode this with a
        // sentinel that fails `t <= c` for every t >= 0 — impossible with
        // Option<Time> alone, so we special-case Time::ZERO minus one step
        // by storing None-like marker: crash time handled in is_alive via
        // the FROM_START sentinel below.
        self.pattern.crash_at[p.index()] = Some(FROM_START);
        self
    }

    /// Finishes the pattern.
    ///
    /// # Panics
    ///
    /// Panics if every process is faulty — the paper's environment `E`
    /// requires at least one correct process in every pattern.
    pub fn build(self) -> FailurePattern {
        assert!(
            self.pattern.has_correct_process(),
            "the paper's environments require at least one correct process"
        );
        self.pattern
    }

    /// Finishes the pattern without the at-least-one-correct check.
    ///
    /// Only adversary constructions that explicitly reason about transient
    /// prefixes need this; normal code should use [`Self::build`].
    pub fn build_unchecked(self) -> FailurePattern {
        self.pattern
    }
}

/// Sentinel crash time for "crashed from the start".
///
/// `is_alive(p, t)` tests `t <= crash_time`; with `u64::MAX` reserved this
/// would wrap, so we use a dedicated impossible time: alive at no `t` is
/// encoded by comparing against a value smaller than every time, which
/// `Option<Time>` cannot express directly — instead we store this sentinel
/// and special-case it.
const FROM_START: Time = Time(u64::MAX);

impl FailurePattern {
    /// Whether `p` is crashed from the very beginning (never takes a step).
    pub fn crashed_from_start_at(&self, p: ProcessId) -> bool {
        self.crash_time(p) == Some(FROM_START)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct_pattern() {
        let f = FailurePattern::all_correct(3);
        assert_eq!(f.n(), 3);
        assert_eq!(f.correct(), ProcessSet::full(3));
        assert!(f.faulty().is_empty());
        assert!(f.has_correct_majority());
        assert_eq!(f.last_crash_time(), Time::ZERO);
    }

    #[test]
    fn crash_right_after_semantics() {
        let f = FailurePattern::builder(3).crash_at(ProcessId(0), Time(5)).build();
        assert!(f.is_alive(ProcessId(0), Time(5)));
        assert!(!f.is_alive(ProcessId(0), Time(6)));
        assert!(!f.is_correct(ProcessId(0)));
        assert_eq!(f.crashed_by(Time(5)), ProcessSet::EMPTY);
        assert_eq!(f.crashed_by(Time(6)), ProcessSet::singleton(ProcessId(0)));
        assert_eq!(f.alive_at(Time(6)), ProcessSet::from_iter([1, 2].map(ProcessId)));
    }

    #[test]
    fn crash_from_start_means_no_steps_ever() {
        let f = FailurePattern::builder(3).crash_from_start(ProcessId(2)).build();
        assert!(!f.is_alive(ProcessId(2), Time::ZERO));
        assert!(f.crashed_from_start_at(ProcessId(2)));
        assert!(!f.crashed_from_start_at(ProcessId(1)));
        assert_eq!(f.correct().len(), 2);
    }

    #[test]
    fn crashed_from_start_helper() {
        let crashed = ProcessSet::from_iter([0, 2].map(ProcessId));
        let f = FailurePattern::crashed_from_start(4, crashed);
        assert_eq!(f.faulty(), crashed);
        assert!(!f.is_alive(ProcessId(0), Time::ZERO));
        assert!(f.is_alive(ProcessId(1), Time(1_000)));
    }

    #[test]
    fn majority_detection() {
        let f = FailurePattern::crashed_from_start(5, ProcessSet::from_iter([0, 1].map(ProcessId)));
        assert!(f.has_correct_majority());
        let g = FailurePattern::crashed_from_start(4, ProcessSet::from_iter([0, 1].map(ProcessId)));
        assert!(!g.has_correct_majority());
    }

    #[test]
    fn last_crash_time_ignores_from_start_sentinel_for_stabilization() {
        // From-start crashes have no finite crash step; stabilization only
        // cares that after last_crash_time the alive set equals Correct.
        let f = FailurePattern::builder(3).crash_at(ProcessId(0), Time(9)).build();
        assert_eq!(f.last_crash_time(), Time(9));
        assert_eq!(f.alive_at(f.last_crash_time().next()), f.correct());
    }

    #[test]
    #[should_panic(expected = "at least one correct")]
    fn all_faulty_rejected() {
        let _ = FailurePattern::builder(1).crash_from_start(ProcessId(0)).build();
    }

    #[test]
    fn build_unchecked_allows_all_faulty() {
        let f = FailurePattern::builder(1).crash_from_start(ProcessId(0)).build_unchecked();
        assert!(!f.has_correct_process());
    }

    #[test]
    fn large_patterns_work_without_process_set_views() {
        let f = FailurePattern::builder(100_000)
            .crash_at(ProcessId(77_777), Time(9))
            .crash_from_start(ProcessId(5))
            .build();
        assert_eq!(f.n(), 100_000);
        assert_eq!(f.correct_count(), 99_998);
        assert_eq!(f.first_correct(), Some(ProcessId(0)));
        assert!(f.is_alive(ProcessId(99_999), Time(1_000)));
        assert!(f.is_alive(ProcessId(77_777), Time(9)));
        assert!(!f.is_alive(ProcessId(77_777), Time(10)));
        assert!(!f.is_alive(ProcessId(5), Time::ZERO));
        assert_eq!(f.last_crash_time(), Time(9));
    }

    #[test]
    fn correct_count_matches_correct_set_at_small_n() {
        let f = FailurePattern::builder(6).crash_at(ProcessId(2), Time(3)).build();
        assert_eq!(f.correct_count(), f.correct().len());
        assert_eq!(f.first_correct(), Some(ProcessId(0)));
        let g = FailurePattern::builder(3).crash_from_start(ProcessId(0)).build();
        assert_eq!(g.first_correct(), Some(ProcessId(1)));
    }

    #[test]
    fn debug_format_lists_crashes() {
        let f = FailurePattern::builder(3).crash_at(ProcessId(1), Time(4)).build();
        let s = format!("{f:?}");
        assert!(s.contains("p1@t4"), "{s}");
    }
}
