//! Failure-detector outputs and the history interface.

use crate::{ProcessId, ProcessSet, Time};
use std::fmt;

/// The value a process obtains from one `queryFD()` call.
///
/// The paper works with failure detectors of several output shapes; this
/// enum is their union, so that reductions can emulate a detector whose
/// output shape differs from the underlying one's:
///
/// * [`FdOutput::Bot`] — the `⊥` that `σ` and `σ_k` permanently output at
///   non-active processes, and that `Σ_S` outputs outside `S` (a
///   convention of this implementation: the paper leaves outputs outside
///   `S` unspecified).
/// * [`FdOutput::Trust`] — a set of trusted processes (`Σ_S` lists, `σ`
///   outputs, and the bare `∅` of Definition 9).
/// * [`FdOutput::TrustActive`] — the `(X, A)` pairs of `σ_k`
///   (Definition 9): a trusted subset `X ⊆ A` together with the active set
///   `A` itself.
/// * [`FdOutput::Leader`] — a single process id (`anti-Ω`, `Ω`).
///
/// Accessors mirror the pseudocode: `queryFD().active` is
/// [`FdOutput::active`], `queryFD().trust` is [`FdOutput::trust`].
///
/// # Example
///
/// ```
/// use sih_model::{FdOutput, ProcessId, ProcessSet};
/// let a = ProcessSet::from_iter([1, 2].map(ProcessId));
/// let out = FdOutput::TrustActive { trust: ProcessSet::singleton(ProcessId(1)), active: a };
/// assert_eq!(out.active(), Some(a));
/// assert_eq!(out.trust(), Some(ProcessSet::singleton(ProcessId(1))));
/// assert!(!FdOutput::Bot.is_trust_set());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FdOutput {
    /// The `⊥` output.
    Bot,
    /// A set of trusted processes (possibly empty — the specifications of
    /// `σ` and `σ_k` use `∅` as a meaningful "no information" output).
    Trust(ProcessSet),
    /// The `(X, A)` output of `σ_k`: trusted subset `X` plus active set `A`.
    TrustActive {
        /// The trusted subset `X ⊆ A`.
        trust: ProcessSet,
        /// The active set `A` chosen by the detector for this run.
        active: ProcessSet,
    },
    /// A single process id (`anti-Ω` / `Ω` style detectors).
    Leader(ProcessId),
}

impl FdOutput {
    /// The empty trusted set `∅`.
    pub const EMPTY_TRUST: FdOutput = FdOutput::Trust(ProcessSet::EMPTY);

    /// Whether this output is `⊥`.
    #[inline]
    pub fn is_bot(self) -> bool {
        matches!(self, FdOutput::Bot)
    }

    /// The `.trust` component, mirroring `queryFD().trust` in Figure 4:
    /// the trusted set of a [`FdOutput::Trust`] or [`FdOutput::TrustActive`]
    /// output, `None` for `⊥` and leader outputs.
    #[inline]
    pub fn trust(self) -> Option<ProcessSet> {
        match self {
            FdOutput::Trust(s) => Some(s),
            FdOutput::TrustActive { trust, .. } => Some(trust),
            _ => None,
        }
    }

    /// The `.active` component, mirroring `queryFD().active` in Figure 4.
    ///
    /// * `⊥` ↦ `None` (the pseudocode's `active = ⊥` test, line 2);
    /// * bare `∅` (a [`FdOutput::Trust`] with an empty set) ↦
    ///   `Some(∅)` (the pseudocode's `while A = ∅` loop, lines 20–21);
    /// * `(X, A)` ↦ `Some(A)`;
    /// * leader outputs ↦ `None`.
    #[inline]
    pub fn active(self) -> Option<ProcessSet> {
        match self {
            FdOutput::Bot => None,
            FdOutput::Trust(_) => Some(ProcessSet::EMPTY),
            FdOutput::TrustActive { active, .. } => Some(active),
            FdOutput::Leader(_) => None,
        }
    }

    /// Whether this is a (possibly empty) trusted-set output.
    #[inline]
    pub fn is_trust_set(self) -> bool {
        matches!(self, FdOutput::Trust(_))
    }

    /// The leader id of a [`FdOutput::Leader`] output.
    #[inline]
    pub fn leader(self) -> Option<ProcessId> {
        match self {
            FdOutput::Leader(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for FdOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdOutput::Bot => write!(f, "⊥"),
            FdOutput::Trust(s) => write!(f, "{s}"),
            FdOutput::TrustActive { trust, active } => write!(f, "({trust},{active})"),
            FdOutput::Leader(p) => write!(f, "{p}"),
        }
    }
}

/// A failure-detector history `H`, queryable as `H(p, t)`.
///
/// In the paper a failure detector `D` maps a failure pattern to a *set* of
/// histories `D(F)`; downstream code works with one concrete history at a
/// time (an *oracle* — typically sampled from `D(F)` with a seed, or
/// constructed explicitly by an adversary). Implementations must be pure:
/// the same `(p, t)` always yields the same output, which is what makes
/// runs replayable.
///
/// Implementors also expose a [`stabilization_time`]: a time after which
/// the history's output no longer changes at any process. Every "eventual"
/// property of the paper's specifications holds from that point on, which
/// lets finite runs check liveness soundly (run past stabilization, then
/// assert).
///
/// [`stabilization_time`]: FailureDetector::stabilization_time
pub trait FailureDetector {
    /// The history value `H(p, t)`.
    fn output(&self, p: ProcessId, t: Time) -> FdOutput;

    /// A time after which `output(p, ·)` is constant for every `p`.
    fn stabilization_time(&self) -> Time;

    /// Human-readable name for reports (e.g. `"σ (A={p0,p1})"`).
    fn name(&self) -> String {
        "unnamed detector".to_owned()
    }
}

impl<T: FailureDetector + ?Sized> FailureDetector for Box<T> {
    fn output(&self, p: ProcessId, t: Time) -> FdOutput {
        (**self).output(p, t)
    }
    fn stabilization_time(&self) -> Time {
        (**self).stabilization_time()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: FailureDetector + ?Sized> FailureDetector for &T {
    fn output(&self, p: ProcessId, t: Time) -> FdOutput {
        (**self).output(p, t)
    }
    fn stabilization_time(&self) -> Time {
        (**self).stabilization_time()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// The trivial detector that outputs `⊥` everywhere — what an algorithm
/// that uses *no* failure information sees (used by the Theorem 13
/// simulation, where processes outside `X` run with no failure
/// information).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoDetector;

impl FailureDetector for NoDetector {
    fn output(&self, _p: ProcessId, _t: Time) -> FdOutput {
        FdOutput::Bot
    }
    fn stabilization_time(&self) -> Time {
        Time::ZERO
    }
    fn name(&self) -> String {
        "none".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bot_accessors() {
        assert!(FdOutput::Bot.is_bot());
        assert_eq!(FdOutput::Bot.trust(), None);
        assert_eq!(FdOutput::Bot.active(), None);
        assert_eq!(FdOutput::Bot.leader(), None);
    }

    #[test]
    fn trust_accessors() {
        let s = ProcessSet::from_iter([0, 3].map(ProcessId));
        let out = FdOutput::Trust(s);
        assert_eq!(out.trust(), Some(s));
        // A bare trusted set has an *empty* active component (Definition 9's
        // "∅" output), not ⊥.
        assert_eq!(out.active(), Some(ProcessSet::EMPTY));
        assert!(out.is_trust_set());
        assert!(FdOutput::EMPTY_TRUST.trust().unwrap().is_empty());
    }

    #[test]
    fn trust_active_accessors() {
        let a = ProcessSet::from_iter([1, 2, 4, 5].map(ProcessId));
        let x = ProcessSet::singleton(ProcessId(4));
        let out = FdOutput::TrustActive { trust: x, active: a };
        assert_eq!(out.trust(), Some(x));
        assert_eq!(out.active(), Some(a));
        assert!(!out.is_trust_set());
    }

    #[test]
    fn leader_accessors() {
        let out = FdOutput::Leader(ProcessId(3));
        assert_eq!(out.leader(), Some(ProcessId(3)));
        assert_eq!(out.trust(), None);
        assert_eq!(out.active(), None);
    }

    #[test]
    fn no_detector_is_bot_everywhere() {
        let d = NoDetector;
        assert_eq!(d.output(ProcessId(0), Time(99)), FdOutput::Bot);
        assert_eq!(d.stabilization_time(), Time::ZERO);
    }

    #[test]
    fn boxed_and_borrowed_detectors_delegate() {
        let d: Box<dyn FailureDetector> = Box::new(NoDetector);
        assert_eq!(d.output(ProcessId(1), Time(5)), FdOutput::Bot);
        assert_eq!(d.name(), "none");
        let r = &NoDetector;
        assert_eq!(FailureDetector::output(&r, ProcessId(0), Time(0)), FdOutput::Bot);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(FdOutput::Bot.to_string(), "⊥");
        assert_eq!(FdOutput::Trust(ProcessSet::singleton(ProcessId(1))).to_string(), "{p1}");
        assert_eq!(FdOutput::Leader(ProcessId(2)).to_string(), "p2");
    }
}
