//! Proposal, decision and register values.

use std::fmt;

/// An opaque value, used as an initial/decided value in `k`-set agreement
/// and as the content of a register.
///
/// The paper's algorithms only ever compare values and take maxima (with
/// the convention `⊥ < v` for every value `v`, used in Phase 3 of Figure 2
/// — that `⊥` is represented downstream as `Option::<Value>::None`, with
/// `None < Some(_)` matching the paper's convention for free).
///
/// # Example
///
/// ```
/// use sih_model::Value;
/// let v = Value(7);
/// assert!(Value(3) < v);
/// assert_eq!(v.to_string(), "v7");
/// // The paper's "⊥ < v for all v" convention:
/// assert!(Option::<Value>::None < Some(Value(0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Value(pub u64);

impl Value {
    /// The canonical "initial value of process `p`" used throughout the
    /// experiments: distinct per process, so distinct decisions are
    /// attributable to their proposers.
    #[inline]
    pub fn of_process(p: crate::ProcessId) -> Value {
        Value(p.0 as u64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(value: u64) -> Self {
        Value(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn ordering_matches_paper_convention() {
        // ⊥ (None) is below every value.
        assert!(Option::<Value>::None < Some(Value(0)));
        assert!(Some(Value(1)) < Some(Value(2)));
        assert_eq!(std::cmp::max(None, Some(Value(3))), Some(Value(3)));
    }

    #[test]
    fn of_process_is_injective_on_ids() {
        assert_ne!(Value::of_process(ProcessId(0)), Value::of_process(ProcessId(1)));
        assert_eq!(Value::of_process(ProcessId(4)), Value(4));
    }

    #[test]
    fn display() {
        assert_eq!(Value(9).to_string(), "v9");
    }
}
