//! Register operation records, shared by the register emulation and the
//! linearizability checker.

use crate::{ProcessId, Time, Value};
use std::fmt;

/// Unique identifier of one register operation within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// What an operation does: `read` or `write(v)` (§2.2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A read; its response carries the value read.
    Read,
    /// A write of the given value; its response is the paper's `OK`.
    Write(Value),
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write(v) => write!(f, "write({v})"),
        }
    }
}

/// A completed (or pending) register operation as observed at the
/// abstraction boundary: invocation and response events with their times.
///
/// The linearizability checker consumes a set of these; an operation with
/// `returned == None` is pending (its issuer crashed mid-operation), which
/// an atomic register permits — the operation may or may not take effect.
///
/// # Example
///
/// ```
/// use sih_model::{OpId, OpKind, OpRecord, ProcessId, Time, Value};
/// let w = OpRecord {
///     id: OpId(0),
///     process: ProcessId(1),
///     kind: OpKind::Write(Value(7)),
///     invoked: Time(3),
///     returned: Some(Time(9)),
///     read_value: None,
/// };
/// assert!(w.is_complete());
/// assert!(w.overlaps(&OpRecord { invoked: Time(5), ..w }));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpRecord {
    /// Unique id of the operation within the run.
    pub id: OpId,
    /// The invoking process.
    pub process: ProcessId,
    /// Read or write.
    pub kind: OpKind,
    /// Invocation time.
    pub invoked: Time,
    /// Response time; `None` if the operation never returned.
    pub returned: Option<Time>,
    /// For completed reads: the value returned (`None` = initial value ⊥).
    pub read_value: Option<Value>,
}

impl OpRecord {
    /// Whether the operation completed (got a response).
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.returned.is_some()
    }

    /// Whether this operation's real-time interval overlaps `other`'s.
    /// Pending operations extend to infinity.
    pub fn overlaps(&self, other: &OpRecord) -> bool {
        let self_ends_before = self.returned.is_some_and(|r| r < other.invoked);
        let other_ends_before = other.returned.is_some_and(|r| r < self.invoked);
        !(self_ends_before || other_ends_before)
    }

    /// Whether this operation strictly precedes `other` in real time
    /// (returned before `other` was invoked) — the happens-before order
    /// that a linearization must respect.
    pub fn precedes(&self, other: &OpRecord) -> bool {
        self.returned.is_some_and(|r| r < other.invoked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: u64, invoked: u64, returned: Option<u64>) -> OpRecord {
        OpRecord {
            id: OpId(id),
            process: ProcessId(0),
            kind: OpKind::Read,
            invoked: Time(invoked),
            returned: returned.map(Time),
            read_value: None,
        }
    }

    #[test]
    fn precedence_is_strict_real_time_order() {
        let a = op(0, 0, Some(5));
        let b = op(1, 6, Some(9));
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        let c = op(2, 5, Some(7)); // invoked at a's return instant: concurrent
        assert!(!a.precedes(&c));
    }

    #[test]
    fn overlap_symmetry() {
        let a = op(0, 0, Some(5));
        let b = op(1, 3, Some(9));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        let c = op(2, 6, Some(7));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn pending_ops_overlap_everything_later() {
        let pending = op(0, 4, None);
        assert!(!pending.is_complete());
        assert!(pending.overlaps(&op(1, 1_000, Some(1_001))));
        assert!(!pending.precedes(&op(1, 1_000, Some(1_001))));
        // ...but not things that finished before it started.
        assert!(!pending.overlaps(&op(2, 0, Some(3))));
    }

    #[test]
    fn display_formats() {
        assert_eq!(OpId(3).to_string(), "op3");
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Write(Value(2)).to_string(), "write(v2)");
    }
}
