//! Environments: sets of failure patterns (§2.1).

use crate::{FailurePattern, ProcessSet};
use std::fmt;

/// An *environment* is a set of failure patterns. The paper works in:
///
/// * [`Environment::AnyCorrect`] — the paper's `E`: all patterns with at
///   least one correct process (the default everywhere);
/// * [`Environment::MajorityCorrect`] — where `Σ_S` is implementable
///   without synchrony assumptions (§2.2) and where Theorem 12's reduction
///   takes place;
/// * [`Environment::CorrectSubsetOf`] — patterns whose correct set is
///   contained in a given set (used to state `σ`'s non-triviality trigger
///   and to build targeted samples);
/// * [`Environment::MaxFaults`] — the classic `t`-resilient environments.
///
/// # Example
///
/// ```
/// use sih_model::{Environment, FailurePattern, ProcessId, ProcessSet};
/// let f = FailurePattern::crashed_from_start(5, ProcessSet::singleton(ProcessId(0)));
/// assert!(Environment::AnyCorrect.contains(&f));
/// assert!(Environment::MajorityCorrect.contains(&f));
/// assert!(!Environment::MaxFaults(0).contains(&f));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Environment {
    /// All failure patterns with at least one correct process (the `E` of
    /// the paper).
    AnyCorrect,
    /// Patterns in which a majority of processes is correct.
    MajorityCorrect,
    /// Patterns whose correct set is a subset of the given set.
    CorrectSubsetOf(ProcessSet),
    /// Patterns with at most `t` faulty processes.
    MaxFaults(usize),
}

impl Environment {
    /// Whether the pattern belongs to this environment.
    pub fn contains(&self, f: &FailurePattern) -> bool {
        if !f.has_correct_process() {
            return false;
        }
        match *self {
            Environment::AnyCorrect => true,
            Environment::MajorityCorrect => f.has_correct_majority(),
            Environment::CorrectSubsetOf(s) => f.correct().is_subset(s),
            Environment::MaxFaults(t) => f.faulty().len() <= t,
        }
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Environment::AnyCorrect => write!(f, "E (≥1 correct)"),
            Environment::MajorityCorrect => write!(f, "majority-correct"),
            Environment::CorrectSubsetOf(s) => write!(f, "Correct ⊆ {s}"),
            Environment::MaxFaults(t) => write!(f, "≤{t} faults"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcessId, Time};

    #[test]
    fn any_correct_accepts_everything_with_a_correct_process() {
        let f = FailurePattern::crashed_from_start(3, ProcessSet::from_iter([0, 1].map(ProcessId)));
        assert!(Environment::AnyCorrect.contains(&f));
    }

    #[test]
    fn any_correct_rejects_all_faulty() {
        let f = FailurePattern::builder(2)
            .crash_from_start(ProcessId(0))
            .crash_at(ProcessId(1), Time(3))
            .build_unchecked();
        assert!(!Environment::AnyCorrect.contains(&f));
        assert!(!Environment::MajorityCorrect.contains(&f));
    }

    #[test]
    fn majority_boundary() {
        // 2 of 4 correct is not a majority; 3 of 4 is.
        let half =
            FailurePattern::crashed_from_start(4, ProcessSet::from_iter([0, 1].map(ProcessId)));
        assert!(!Environment::MajorityCorrect.contains(&half));
        let maj = FailurePattern::crashed_from_start(4, ProcessSet::singleton(ProcessId(0)));
        assert!(Environment::MajorityCorrect.contains(&maj));
    }

    #[test]
    fn correct_subset_environment() {
        let pair = ProcessSet::from_iter([0, 1].map(ProcessId));
        let f = FailurePattern::crashed_from_start(4, ProcessSet::from_iter([2, 3].map(ProcessId)));
        assert!(Environment::CorrectSubsetOf(pair).contains(&f));
        let g = FailurePattern::all_correct(4);
        assert!(!Environment::CorrectSubsetOf(pair).contains(&g));
    }

    #[test]
    fn max_faults_environment() {
        let f = FailurePattern::crashed_from_start(5, ProcessSet::singleton(ProcessId(4)));
        assert!(Environment::MaxFaults(1).contains(&f));
        assert!(Environment::MaxFaults(2).contains(&f));
        assert!(!Environment::MaxFaults(0).contains(&f));
    }

    #[test]
    fn display() {
        assert_eq!(Environment::MaxFaults(2).to_string(), "≤2 faults");
    }
}
