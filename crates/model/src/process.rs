//! Process identifiers and sets of processes.
//!
//! The paper's system is a set `Π` of `n` processes. Process identities are
//! totally ordered (the algorithms of Figures 4 and 6 rely on "smallest" /
//! "greatest" identities), so [`ProcessId`] is `Ord`.
//!
//! [`ProcessSet`] is a compact bitset over process ids, supporting the set
//! algebra the specifications use constantly (intersection for quorum
//! properties, subset tests for completeness, …). The implementation caps
//! the system size at [`ProcessSet::MAX_PROCESSES`] processes, far beyond
//! anything the experiments need.

use std::fmt;

/// Identity of a process in `Π = {p_0, …, p_{n-1}}`.
///
/// Ids are dense indices starting at zero; the total order on ids is the
/// order the paper's algorithms use when they speak of the "smallest" or
/// "greatest" processes of a set.
///
/// # Example
///
/// ```
/// use sih_model::ProcessId;
/// let p = ProcessId(2);
/// assert!(p < ProcessId(3));
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The id as a dense index, usable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(value: u32) -> Self {
        ProcessId(value)
    }
}

/// A set of processes, represented as a 64-bit bitset.
///
/// `ProcessSet` is the workhorse of every failure-detector specification in
/// the paper: trusted lists, active sets, quorums and correct sets are all
/// `ProcessSet`s.
///
/// # Example
///
/// ```
/// use sih_model::{ProcessId, ProcessSet};
/// let a = ProcessSet::from_iter([0, 1, 2].map(ProcessId));
/// let b = ProcessSet::from_iter([2, 3].map(ProcessId));
/// assert!(a.intersects(b));
/// assert_eq!(a.intersection(b), ProcessSet::singleton(ProcessId(2)));
/// assert!(ProcessSet::singleton(ProcessId(1)).is_subset(a));
/// assert_eq!(a.union(b).len(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// Maximum number of processes representable in a set.
    pub const MAX_PROCESSES: usize = 64;

    /// The empty set (the `∅` of the specifications).
    pub const EMPTY: ProcessSet = ProcessSet(0);

    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The full system `Π = {p_0, …, p_{n-1}}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`Self::MAX_PROCESSES`].
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_PROCESSES, "at most 64 processes supported");
        if n == 64 {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n) - 1)
        }
    }

    /// The singleton `{p}`.
    #[inline]
    pub fn singleton(p: ProcessId) -> Self {
        ProcessSet(1u64 << p.index())
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of processes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `p ∈ self`.
    #[inline]
    pub fn contains(self, p: ProcessId) -> bool {
        p.index() < Self::MAX_PROCESSES && self.0 & (1u64 << p.index()) != 0
    }

    /// Inserts `p`, returning whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let fresh = !self.contains(p);
        self.0 |= 1u64 << p.index();
        fresh
    }

    /// Removes `p`, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let present = self.contains(p);
        self.0 &= !(1u64 << p.index());
        present
    }

    /// Set union `self ∪ other`.
    #[inline]
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[inline]
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }

    /// Whether `self ∩ other ≠ ∅` — the intersection properties of `Σ_S`,
    /// `σ` and `σ_k` are all phrased this way.
    #[inline]
    pub fn intersects(self, other: ProcessSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self ⊆ other` — the completeness properties are phrased
    /// this way (`H(p, t') ⊆ Correct(F)`).
    #[inline]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Smallest process id in the set, if any.
    #[inline]
    pub fn min(self) -> Option<ProcessId> {
        if self.is_empty() {
            None
        } else {
            Some(ProcessId(self.0.trailing_zeros()))
        }
    }

    /// Greatest process id in the set, if any.
    #[inline]
    pub fn max(self) -> Option<ProcessId> {
        if self.is_empty() {
            None
        } else {
            Some(ProcessId(63 - self.0.leading_zeros()))
        }
    }

    /// The `m` smallest processes of the set (the paper's `A` in
    /// Definition 9: "the set of the `⌊k/2⌋` smallest processes in `A`").
    ///
    /// Returns the whole set if it has at most `m` elements.
    pub fn smallest(self, m: usize) -> ProcessSet {
        let mut out = ProcessSet::EMPTY;
        for p in self.iter().take(m) {
            out.insert(p);
        }
        out
    }

    /// The `m` greatest processes of the set (the complement half `Ā` of
    /// Definition 9 when `m = |A| - ⌊k/2⌋`).
    pub fn greatest(self, m: usize) -> ProcessSet {
        self.difference(self.smallest(self.len().saturating_sub(m)))
    }

    /// Iterates over members in increasing id order.
    pub fn iter(self) -> ProcessSetIter {
        ProcessSetIter(self.0)
    }

    /// The raw bits of the set; useful for hashing engine states.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = ProcessSetIter;
    fn into_iter(self) -> ProcessSetIter {
        self.iter()
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the members of a [`ProcessSet`], in increasing id order.
#[derive(Clone, Debug)]
pub struct ProcessSetIter(u64);

impl Iterator for ProcessSetIter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(ProcessId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcessSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ProcessSet {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    #[test]
    fn empty_set_basics() {
        let e = ProcessSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        assert!(!e.contains(ProcessId(0)));
        assert!(e.is_subset(e));
        assert!(!e.intersects(e));
    }

    #[test]
    fn full_set() {
        let f = ProcessSet::full(5);
        assert_eq!(f.len(), 5);
        assert!(f.contains(ProcessId(0)));
        assert!(f.contains(ProcessId(4)));
        assert!(!f.contains(ProcessId(5)));
        assert_eq!(ProcessSet::full(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn full_set_too_big_panics() {
        let _ = ProcessSet::full(65);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(7)));
        assert!(!s.insert(ProcessId(7)));
        assert!(s.contains(ProcessId(7)));
        assert!(s.remove(ProcessId(7)));
        assert!(!s.remove(ProcessId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn algebra() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(a.union(b), set(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), set(&[2]));
        assert_eq!(a.difference(b), set(&[0, 1]));
        assert!(a.intersects(b));
        assert!(!set(&[0]).intersects(set(&[1])));
        assert!(set(&[1, 2]).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn min_max_smallest_greatest() {
        let s = set(&[3, 9, 1, 40]);
        assert_eq!(s.min(), Some(ProcessId(1)));
        assert_eq!(s.max(), Some(ProcessId(40)));
        assert_eq!(s.smallest(2), set(&[1, 3]));
        assert_eq!(s.greatest(2), set(&[9, 40]));
        assert_eq!(s.smallest(0), ProcessSet::EMPTY);
        assert_eq!(s.smallest(10), s);
        assert_eq!(s.greatest(10), s);
    }

    #[test]
    fn halves_partition_like_definition_9() {
        // For |A| = 2k the paper splits A into the k smallest (A-low) and
        // the k greatest (A-high); the two halves partition A.
        let a = set(&[1, 4, 6, 9]);
        let low = a.smallest(2);
        let high = a.greatest(2);
        assert_eq!(low.union(high), a);
        assert!(!low.intersects(high));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = set(&[9, 0, 4]);
        let ids: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 4, 9]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(set(&[0, 2]).to_string(), "{p0,p2}");
        assert_eq!(format!("{:?}", ProcessSet::EMPTY), "{}");
    }
}
