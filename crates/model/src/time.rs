//! The global clock `Φ`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point of the paper's global clock `Φ`.
///
/// In the paper's model, at most one process takes a step at any time, and
/// the clock is **not** accessible to the processes — only to failure
/// patterns, failure-detector histories, and to the meta-level checkers.
/// The simulator advances `Time` by one per executed step, so `Time` doubles
/// as a global step counter.
///
/// # Example
///
/// ```
/// use sih_model::Time;
/// let t = Time(10);
/// assert_eq!(t + 5, Time(15));
/// assert_eq!(t.next(), Time(11));
/// assert!(t < Time(11));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(pub u64);

impl Time {
    /// The initial time `t_0 = 0`.
    pub const ZERO: Time = Time(0);

    /// The immediately following time.
    #[inline]
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// Saturating subtraction, useful for "within the last `d` steps"
    /// window computations in checkers.
    #[inline]
    pub fn saturating_sub(self, d: u64) -> Time {
        Time(self.0.saturating_sub(d))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Time {
    fn from(value: u64) -> Self {
        Time(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        assert!(Time::ZERO < Time(1));
        assert_eq!(Time(3) + 4, Time(7));
        assert_eq!(Time(7) - Time(3), 4);
        assert_eq!(Time(2).next(), Time(3));
        let mut t = Time(0);
        t += 10;
        assert_eq!(t, Time(10));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Time(5).saturating_sub(10), Time::ZERO);
        assert_eq!(Time(10).saturating_sub(3), Time(7));
    }

    #[test]
    fn display() {
        assert_eq!(Time(42).to_string(), "t42");
    }
}
