//! Shared-memory substrate for the *Sharing is Harder than Agreeing*
//! reproduction.
//!
//! Theorem 12 of the paper reasons about "a shared memory distributed
//! system": processes communicating solely through atomic read/write
//! registers. This crate supplies that world and its bridge back into
//! message passing:
//!
//! * [`SharedAlgorithm`] — a deterministic register program (one atomic
//!   access per step);
//! * [`LocalSharedSim`] — registers as given devices (the setting of the
//!   Saks–Zaharoglou / Herlihy–Shavit / Borowsky–Gafni impossibility the
//!   paper cites);
//! * [`CollectMin`] — the classic `f`-resilient `(f+1)`-set agreement
//!   algorithm, the positive side of that boundary;
//! * [`SharedOverAbd`] / [`bridged_processes`] — run any register
//!   program **unchanged** in the paper's message-passing model, with
//!   registers emulated ABD-style from `Σ` quorums: the executable form
//!   of "register-based algorithms port to message passing", which is
//!   what lets Theorem 12 transfer the shared-memory impossibility.
//!
//! # Example: the same program in both worlds
//!
//! ```
//! use sih_model::{FailurePattern, ProcessSet, Value};
//! use sih_sharedmem::{bridged_processes, CollectMin, LocalSharedSim};
//! use sih_detectors::SigmaS;
//! use sih_runtime::{FairScheduler, Simulation};
//!
//! let proposals = vec![Value(0), Value(1), Value(2)];
//!
//! // Shared memory, physical registers:
//! let pattern = FailurePattern::all_correct(3);
//! let mut local = LocalSharedSim::new(CollectMin::processes(&proposals, 1), 3, pattern.clone());
//! assert!(local.run_fair(7, 100_000));
//! assert!(local.distinct_decisions().len() <= 2);
//!
//! // Message passing, registers emulated from Σ:
//! let det = SigmaS::new(ProcessSet::full(3), &pattern, 7);
//! let mut sim = Simulation::new(bridged_processes(CollectMin::processes(&proposals, 1), 3), pattern);
//! sim.run_until(&mut FairScheduler::new(7), &det, 400_000,
//!     |s| s.pattern().correct().iter().all(|p| s.trace().decision_of(p).is_some()));
//! assert!(sim.trace().distinct_decisions().len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod collect;
mod local;
mod shared;

pub use bridge::{bridged_processes, BridgeMsg, SharedOverAbd};
pub use collect::CollectMin;
pub use local::LocalSharedSim;
pub use shared::{RegisterId, SharedAction, SharedAlgorithm};
