//! The classic `f`-resilient `(f+1)`-set agreement algorithm in shared
//! memory: write your value, collect until `n − f` slots are filled,
//! decide the minimum seen.
//!
//! Correctness (safety): every process misses at most `f` of the `n`
//! written values, so its minimum lies among the `f+1` smallest values —
//! at most `f+1` distinct decisions. Termination needs at most `f`
//! crashes (otherwise fewer than `n − f` slots ever fill and the
//! collector spins — which is exactly the resilience boundary the
//! celebrated impossibility [21, 13, 3] proves cannot be crossed:
//! `k`-set agreement is unsolvable with `k ≤ f`).
//!
//! Used two ways in this reproduction:
//!
//! * in the **local** shared-memory world, as the positive side of the
//!   boundary Theorem 12 leans on;
//! * over the **message-passing bridge** (ABD registers + `Σ`), where it
//!   becomes an `(f+1)`-set agreement algorithm in the paper's own model
//!   — the "shared-memory algorithms port to message passing with a
//!   register emulation" direction of the Theorem 12 argument.

use crate::shared::{RegisterId, SharedAction, SharedAlgorithm};
use sih_model::Value;

/// One process of the collect-min algorithm. Register layout: slot `i`
/// (register `R_i`) is written only by process `i`.
#[derive(Clone, Debug)]
pub struct CollectMin {
    v: Value,
    f: usize,
    phase: Phase,
    cursor: u32,
    seen: Vec<Option<Value>>,
    done: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Announce,
    Collect,
    Done,
}

impl CollectMin {
    /// A process proposing `v`, tolerating up to `f` crashes, in a system
    /// of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `f ≥ n`.
    pub fn new(v: Value, n: usize, f: usize) -> Self {
        assert!(f < n, "resilience must leave at least one process");
        CollectMin { v, f, phase: Phase::Announce, cursor: 0, seen: vec![None; n], done: false }
    }

    /// Builds the `n` processes for the given proposals.
    pub fn processes(proposals: &[Value], f: usize) -> Vec<Self> {
        let n = proposals.len();
        proposals.iter().map(|&v| Self::new(v, n, f)).collect()
    }

    fn filled(&self) -> usize {
        self.seen.iter().flatten().count()
    }
}

// sih-analysis: allow(index-reachable) — seen is an n-sized array and the cursor is reduced
// mod n before every access.
impl SharedAlgorithm for CollectMin {
    fn step(&mut self, me: u32, n: usize, last_read: Option<Option<Value>>) -> SharedAction {
        match self.phase {
            Phase::Announce => {
                self.seen[me as usize] = Some(self.v);
                self.phase = Phase::Collect;
                SharedAction::Write(RegisterId(me), self.v)
            }
            Phase::Collect => {
                // Record the previous read's result.
                if let Some(contents) = last_read {
                    let slot = if self.cursor == 0 { n as u32 - 1 } else { self.cursor - 1 };
                    if let Some(v) = contents {
                        self.seen[slot as usize] = Some(v);
                    }
                }
                if self.filled() >= n - self.f {
                    self.phase = Phase::Done;
                    self.done = true;
                    let min = self
                        .seen
                        .iter()
                        .flatten()
                        .min()
                        .copied()
                        .expect("invariant: own slot is filled");
                    return SharedAction::Decide(min);
                }
                let r = RegisterId(self.cursor);
                self.cursor = (self.cursor + 1) % n as u32;
                SharedAction::Read(r)
            }
            Phase::Done => SharedAction::Pause,
        }
    }

    fn done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalSharedSim;
    use sih_model::{FailurePattern, ProcessId, ProcessSet, Time};

    fn proposals(n: usize) -> Vec<Value> {
        (0..n as u64).map(Value).collect()
    }

    #[test]
    fn failure_free_collect_min_decides_at_most_f_plus_1_values() {
        for n in [3usize, 5, 7] {
            for f in 0..n.min(4) {
                for seed in 0..5 {
                    let pattern = FailurePattern::all_correct(n);
                    let procs = CollectMin::processes(&proposals(n), f);
                    let mut sim = LocalSharedSim::new(procs, n, pattern);
                    assert!(sim.run_fair(seed, 100_000), "n={n} f={f} seed={seed}");
                    let distinct = sim.distinct_decisions();
                    assert!(distinct.len() <= f + 1, "n={n} f={f} seed={seed}: {distinct:?}");
                }
            }
        }
    }

    #[test]
    fn tolerates_exactly_f_crashes() {
        let n = 5;
        let f = 2;
        for seed in 0..5 {
            let pattern = FailurePattern::builder(n)
                .crash_from_start(ProcessId(3))
                .crash_at(ProcessId(4), Time(2))
                .build();
            let procs = CollectMin::processes(&proposals(n), f);
            let mut sim = LocalSharedSim::new(procs, n, pattern);
            assert!(sim.run_fair(seed, 100_000), "seed {seed}");
            assert!(sim.distinct_decisions().len() <= f + 1);
        }
    }

    #[test]
    fn decisions_lie_among_the_f_plus_1_smallest_values() {
        let n = 6;
        let f = 2;
        for seed in 0..8 {
            let pattern = FailurePattern::all_correct(n);
            let procs = CollectMin::processes(&proposals(n), f);
            let mut sim = LocalSharedSim::new(procs, n, pattern);
            assert!(sim.run_fair(seed, 100_000));
            for v in sim.distinct_decisions() {
                assert!(v.0 <= f as u64, "decision {v} outside the {}-smallest", f + 1);
            }
        }
    }

    #[test]
    fn too_many_crashes_block_termination() {
        // f = 1 but two processes crash from the start: fewer than n−1
        // slots ever fill, so no correct process can decide — the
        // resilience boundary in action.
        let n = 4;
        let f = 1;
        let pattern =
            FailurePattern::crashed_from_start(n, ProcessSet::from_iter([2, 3].map(ProcessId)));
        let procs = CollectMin::processes(&proposals(n), f);
        let mut sim = LocalSharedSim::new(procs, n, pattern);
        assert!(!sim.run_fair(3, 50_000), "must spin forever");
        assert!(sim.distinct_decisions().is_empty());
    }

    #[test]
    #[should_panic(expected = "resilience")]
    fn degenerate_resilience_rejected() {
        let _ = CollectMin::new(Value(0), 3, 3);
    }
}
