//! The message-passing bridge: run any [`SharedAlgorithm`] in the
//! paper's model, with its registers **emulated** ABD-style from `Σ`
//! quorums.
//!
//! This mechanizes the reading direction of Theorem 12's argument: an
//! algorithm written against shared registers runs unchanged in an
//! asynchronous message-passing system equipped with `Σ` (implementable
//! wherever a majority is correct, §2.2) — so anything impossible in
//! shared memory stays impossible in that message-passing setting, and
//! anything possible there (e.g. [`CollectMin`]) ports over.
//!
//! Each process hosts a replica of the whole register array (one
//! timestamped cell per register) and drives its program: every
//! `Read`/`Write` action becomes a two-phase quorum operation (query the
//! maximum timestamp, then update/write-back), with quorums taken from
//! the current `Σ` trusted set.
//!
//! [`CollectMin`]: crate::CollectMin

use crate::shared::{RegisterId, SharedAction, SharedAlgorithm};
use sih_model::{ProcessId, ProcessSet, Value};
use sih_runtime::{Automaton, Effects, StepInput};

/// Lamport timestamp for one register cell.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
struct Ts {
    num: u64,
    pid: u32,
}

/// Protocol messages of the bridge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BridgeMsg {
    /// Phase 1: query a register's replica cell.
    Query {
        /// Register queried.
        reg: RegisterId,
        /// Phase tag.
        tag: u64,
    },
    /// Phase 1 reply.
    QueryAck {
        /// Echoed tag.
        tag: u64,
        /// Cell timestamp.
        ts: u64,
        /// Writer tiebreak.
        pid: u32,
        /// Cell value.
        v: Option<Value>,
    },
    /// Phase 2: install a value (write or read-back).
    Update {
        /// Register updated.
        reg: RegisterId,
        /// Phase tag.
        tag: u64,
        /// Timestamp to install.
        ts: u64,
        /// Writer tiebreak.
        pid: u32,
        /// Value to install.
        v: Option<Value>,
    },
    /// Phase 2 acknowledgement.
    UpdateAck {
        /// Echoed tag.
        tag: u64,
    },
}

#[derive(Clone, Debug)]
enum OpPhase {
    Query { best: (Ts, Option<Value>) },
    Update { read_result: Option<Option<Value>> },
}

#[derive(Clone, Debug)]
struct ActiveOp {
    action: SharedAction,
    tag: u64,
    phase: OpPhase,
    acks: ProcessSet,
}

/// One process: a register-array replica plus the embedded program.
#[derive(Clone, Debug)]
pub struct SharedOverAbd<A: SharedAlgorithm> {
    program: A,
    n: usize,
    cells: Vec<(Ts, Option<Value>)>,
    current: Option<ActiveOp>,
    pending_read: Option<Option<Value>>,
    next_tag: u64,
    started: bool,
    decided: bool,
}

impl<A: SharedAlgorithm> SharedOverAbd<A> {
    /// Wraps `program` over `registers` emulated registers in a system of
    /// `n` processes.
    pub fn new(program: A, registers: usize, n: usize) -> Self {
        SharedOverAbd {
            program,
            n,
            cells: vec![(Ts::default(), None); registers],
            current: None,
            pending_read: None,
            next_tag: 0,
            started: false,
            decided: false,
        }
    }

    /// Whether the embedded program decided.
    pub fn decided(&self) -> bool {
        self.decided
    }

    fn fresh_tag(&mut self, me: ProcessId) -> u64 {
        self.next_tag += 1;
        (u64::from(me.0) << 40) | self.next_tag
    }

    fn begin_op(&mut self, action: SharedAction, me: ProcessId, eff: &mut Effects<BridgeMsg>) {
        let reg = match action {
            SharedAction::Read(r) | SharedAction::Write(r, _) => r,
            _ => unreachable!("invariant: only register ops become quorum ops"),
        };
        let tag = self.fresh_tag(me);
        self.current = Some(ActiveOp {
            action,
            tag,
            phase: OpPhase::Query { best: (Ts::default(), None) },
            acks: ProcessSet::EMPTY,
        });
        eff.send_all(self.n, BridgeMsg::Query { reg, tag });
    }
}

// sih-analysis: allow(index-reachable) — pending_read/decisions are n-sized arrays indexed by
// the stepping process's own id.
impl<A: SharedAlgorithm> Automaton for SharedOverAbd<A> {
    type Msg = BridgeMsg;

    fn step(&mut self, input: StepInput<BridgeMsg>, eff: &mut Effects<BridgeMsg>) {
        // Replica duties.
        if let Some(env) = &input.delivered {
            match env.payload {
                BridgeMsg::Query { reg, tag } => {
                    let (ts, v) = self.cells[reg.index()];
                    eff.send(env.from, BridgeMsg::QueryAck { tag, ts: ts.num, pid: ts.pid, v });
                }
                BridgeMsg::Update { reg, tag, ts, pid, v } => {
                    let incoming = Ts { num: ts, pid };
                    if incoming > self.cells[reg.index()].0 {
                        self.cells[reg.index()] = (incoming, v);
                    }
                    eff.send(env.from, BridgeMsg::UpdateAck { tag });
                }
                BridgeMsg::QueryAck { tag, ts, pid, v } => {
                    if let Some(op) = &mut self.current {
                        if op.tag == tag {
                            if let OpPhase::Query { best } = &mut op.phase {
                                op.acks.insert(env.from);
                                let incoming = Ts { num: ts, pid };
                                if incoming > best.0 {
                                    *best = (incoming, v);
                                }
                            }
                        }
                    }
                }
                BridgeMsg::UpdateAck { tag } => {
                    if let Some(op) = &mut self.current {
                        if op.tag == tag {
                            if let OpPhase::Update { .. } = op.phase {
                                op.acks.insert(env.from);
                            }
                        }
                    }
                }
            }
        }

        if self.decided {
            return;
        }
        let Some(trusted) = input.fd.trust() else { return };
        if trusted.is_empty() {
            return;
        }

        // Phase completion?
        if let Some(op) = &self.current {
            if trusted.is_subset(op.acks) {
                let op = self.current.take().expect("invariant: current checked Some above");
                match op.phase {
                    OpPhase::Query { best } => {
                        let reg = match op.action {
                            SharedAction::Read(r) | SharedAction::Write(r, _) => r,
                            _ => unreachable!("invariant: quorum ops carry only register actions"),
                        };
                        let (ts, v, read_result) = match op.action {
                            SharedAction::Write(_, w) => {
                                (Ts { num: best.0.num + 1, pid: input.me.0 }, Some(w), None)
                            }
                            SharedAction::Read(_) => (best.0, best.1, Some(best.1)),
                            _ => unreachable!("invariant: quorum ops carry only register actions"),
                        };
                        let tag = self.fresh_tag(input.me);
                        self.current = Some(ActiveOp {
                            action: op.action,
                            tag,
                            phase: OpPhase::Update { read_result },
                            acks: ProcessSet::EMPTY,
                        });
                        eff.send_all(
                            self.n,
                            BridgeMsg::Update { reg, tag, ts: ts.num, pid: ts.pid, v },
                        );
                    }
                    OpPhase::Update { read_result } => {
                        if let Some(result) = read_result {
                            self.pending_read = Some(result);
                        }
                    }
                }
                return;
            }
            return; // op still in flight
        }

        // Idle: ask the program for its next action.
        if !self.started {
            self.started = true;
        }
        let last_read = self.pending_read.take();
        match self.program.step(input.me.0, self.n, last_read) {
            SharedAction::Pause => {}
            SharedAction::Decide(v) => {
                self.decided = true;
                eff.decide(v);
                // Do NOT halt: the replica must keep serving quorums for
                // the other processes' register operations.
            }
            action @ (SharedAction::Read(_) | SharedAction::Write(_, _)) => {
                self.begin_op(action, input.me, eff);
            }
        }
    }
}

/// Builds the `n` bridged processes for the given programs.
pub fn bridged_processes<A: SharedAlgorithm>(
    programs: Vec<A>,
    registers: usize,
) -> Vec<SharedOverAbd<A>> {
    let n = programs.len();
    programs.into_iter().map(|p| SharedOverAbd::new(p, registers, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CollectMin;
    use sih_detectors::SigmaS;
    use sih_model::{FailurePattern, Time};
    use sih_runtime::{FairScheduler, Simulation};

    fn proposals(n: usize) -> Vec<Value> {
        (0..n as u64).map(Value).collect()
    }

    fn run_bridged_collect_min(
        pattern: &FailurePattern,
        f: usize,
        seed: u64,
        max_steps: u64,
    ) -> (Vec<Value>, bool) {
        let n = pattern.n();
        let det = SigmaS::new(ProcessSet::full(n), pattern, seed);
        let programs = CollectMin::processes(&proposals(n), f);
        let procs = bridged_processes(programs, n);
        let mut sim = Simulation::new(procs, pattern.clone());
        let mut sched = FairScheduler::new(seed);
        sim.run_until(&mut sched, &det, max_steps, |s| {
            s.pattern().correct().iter().all(|p| s.trace().decision_of(p).is_some())
        });
        let all_decided =
            sim.pattern().correct().iter().all(|p| sim.trace().decision_of(p).is_some());
        (sim.trace().distinct_decisions(), all_decided)
    }

    #[test]
    fn collect_min_ports_to_message_passing_failure_free() {
        // Theorem 12's setting: registers emulated from Σ in a
        // majority-correct message-passing system, shared-memory
        // algorithm unchanged.
        for seed in 0..5 {
            let f = 1;
            let pattern = FailurePattern::all_correct(4);
            let (distinct, done) = run_bridged_collect_min(&pattern, f, seed, 400_000);
            assert!(done, "seed {seed}");
            assert!(distinct.len() <= f + 1, "seed {seed}: {distinct:?}");
        }
    }

    #[test]
    fn collect_min_ports_with_a_minority_crash() {
        for seed in 0..5 {
            let f = 1;
            let pattern = FailurePattern::builder(5).crash_at(ProcessId(4), Time(40)).build();
            assert!(pattern.has_correct_majority());
            let (distinct, done) = run_bridged_collect_min(&pattern, f, seed, 600_000);
            assert!(done, "seed {seed}");
            assert!(distinct.len() <= f + 1, "seed {seed}: {distinct:?}");
        }
    }

    #[test]
    fn bridge_safety_holds_even_when_the_run_is_truncated() {
        // Agreement is safety: even without termination the decided set
        // stays within f+1 values.
        let f = 2;
        let pattern = FailurePattern::all_correct(6);
        let (distinct, _) = run_bridged_collect_min(&pattern, f, 9, 20_000);
        assert!(distinct.len() <= f + 1);
    }

    #[test]
    fn decided_replicas_keep_serving() {
        // One process decides long before the others; its replica must
        // still answer quorum queries or the rest would block.
        let f = 0; // requires reading everyone: maximal serving pressure
        let pattern = FailurePattern::all_correct(3);
        let (distinct, done) = run_bridged_collect_min(&pattern, f, 3, 400_000);
        assert!(done);
        assert_eq!(distinct.len(), 1, "f = 0 forces consensus on the minimum");
        assert_eq!(distinct[0], Value(0));
    }
}
