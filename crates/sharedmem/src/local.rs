//! The local shared-memory simulator: registers as given physical
//! devices (the world of [21, 13, 3], where set agreement is impossible
//! wait-free).
//!
//! Atomicity is by construction — exactly one process accesses the
//! memory per step, so every operation is instantaneous.

use crate::shared::{SharedAction, SharedAlgorithm};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sih_model::{FailurePattern, ProcessId, Time, Value};

/// A run of shared-memory programs over a register array.
pub struct LocalSharedSim<A: SharedAlgorithm> {
    procs: Vec<A>,
    memory: Vec<Option<Value>>,
    pattern: FailurePattern,
    now: Time,
    pending_read: Vec<Option<Option<Value>>>,
    decisions: Vec<Option<Value>>,
    steps: u64,
}

// sih-analysis: allow(index-reachable) — memory/decisions/pending_read are sized to the
// register count and n at construction; step() asserts the process is in range.
impl<A: SharedAlgorithm> LocalSharedSim<A> {
    /// A run of `procs` over `registers` zero-initialized (⊥) registers.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len() != pattern.n()`.
    pub fn new(procs: Vec<A>, registers: usize, pattern: FailurePattern) -> Self {
        assert_eq!(procs.len(), pattern.n());
        let n = procs.len();
        LocalSharedSim {
            procs,
            memory: vec![None; registers],
            pattern,
            now: Time::ZERO,
            pending_read: vec![None; n],
            decisions: vec![None; n],
            steps: 0,
        }
    }

    /// The decision of `p`, if any.
    pub fn decision_of(&self, p: ProcessId) -> Option<Value> {
        self.decisions[p.index()]
    }

    /// The distinct decided values, sorted.
    pub fn distinct_decisions(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.decisions.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current contents of a register.
    pub fn register(&self, r: crate::shared::RegisterId) -> Option<Value> {
        self.memory[r.index()]
    }

    /// Executes one atomic step of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is crashed at the step's time, or accesses a
    /// register out of range.
    pub fn step(&mut self, p: ProcessId) {
        let t = self.now.next();
        assert!(self.pattern.is_alive(p, t), "scheduled crashed process {p}");
        self.now = t;
        self.steps += 1;
        if self.decisions[p.index()].is_some() {
            return; // decided processes spin
        }
        let last_read = self.pending_read[p.index()].take();
        let n = self.procs.len();
        let action = self.procs[p.index()].step(p.0, n, last_read);
        match action {
            SharedAction::Read(r) => {
                self.pending_read[p.index()] = Some(self.memory[r.index()]);
            }
            SharedAction::Write(r, v) => {
                self.memory[r.index()] = Some(v);
            }
            SharedAction::Decide(v) => {
                self.decisions[p.index()] = Some(v);
            }
            SharedAction::Pause => {}
        }
    }

    /// Runs under a seeded uniform-random fair scheduler until every
    /// correct process decided or `max_steps` elapse. Returns whether all
    /// correct processes decided.
    pub fn run_fair(&mut self, seed: u64, max_steps: u64) -> bool {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..max_steps {
            let next = self.now.next();
            let alive: Vec<ProcessId> = self
                .pattern
                .alive_at(next)
                .iter()
                .filter(|p| self.decisions[p.index()].is_none())
                .collect();
            if alive.is_empty() {
                break;
            }
            let p = alive[rng.gen_range(0..alive.len())];
            self.step(p);
            if self.pattern.correct().iter().all(|p| self.decisions[p.index()].is_some()) {
                return true;
            }
        }
        self.pattern.correct().iter().all(|p| self.decisions[p.index()].is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::RegisterId;

    /// Writes its id to register `me`, reads register 0, decides what it
    /// read (or its own value if ⊥).
    struct WriteReadDecide {
        phase: u8,
        me_val: Value,
        done: bool,
    }
    impl WriteReadDecide {
        fn new(v: Value) -> Self {
            WriteReadDecide { phase: 0, me_val: v, done: false }
        }
    }
    impl SharedAlgorithm for WriteReadDecide {
        fn step(&mut self, me: u32, _n: usize, last_read: Option<Option<Value>>) -> SharedAction {
            match self.phase {
                0 => {
                    self.phase = 1;
                    SharedAction::Write(RegisterId(me), self.me_val)
                }
                1 => {
                    self.phase = 2;
                    SharedAction::Read(RegisterId(0))
                }
                _ => {
                    self.done = true;
                    let seen = last_read.flatten().unwrap_or(self.me_val);
                    SharedAction::Decide(seen)
                }
            }
        }
        fn done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn atomic_read_sees_latest_write() {
        let pattern = FailurePattern::all_correct(2);
        let procs = vec![WriteReadDecide::new(Value(10)), WriteReadDecide::new(Value(20))];
        let mut sim = LocalSharedSim::new(procs, 2, pattern);
        // p0 writes R0=10; p0 reads R0; p0 decides 10.
        sim.step(ProcessId(0));
        sim.step(ProcessId(0));
        sim.step(ProcessId(0));
        assert_eq!(sim.decision_of(ProcessId(0)), Some(Value(10)));
        assert_eq!(sim.register(RegisterId(0)), Some(Value(10)));
        // p1 writes R1, reads R0 (=10), decides 10.
        sim.step(ProcessId(1));
        sim.step(ProcessId(1));
        sim.step(ProcessId(1));
        assert_eq!(sim.decision_of(ProcessId(1)), Some(Value(10)));
        assert_eq!(sim.distinct_decisions(), vec![Value(10)]);
    }

    #[test]
    fn crashed_processes_cannot_step() {
        let pattern = FailurePattern::builder(2).crash_at(ProcessId(1), Time(1)).build();
        let procs = vec![WriteReadDecide::new(Value(1)), WriteReadDecide::new(Value(2))];
        let mut sim = LocalSharedSim::new(procs, 2, pattern);
        sim.step(ProcessId(1)); // allowed: alive at t=1
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.step(ProcessId(1)); // t=2: crashed
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_fair_drives_everyone_to_decision() {
        let pattern = FailurePattern::all_correct(3);
        let procs = vec![
            WriteReadDecide::new(Value(1)),
            WriteReadDecide::new(Value(2)),
            WriteReadDecide::new(Value(3)),
        ];
        let mut sim = LocalSharedSim::new(procs, 3, pattern);
        assert!(sim.run_fair(7, 10_000));
        assert!(sim.distinct_decisions().len() <= 2, "everyone adopts R0's value or their own");
    }
}
