//! The shared-memory programming model: deterministic programs that
//! access atomic registers one operation at a time.
//!
//! This is the model of the celebrated set-agreement impossibility
//! [21, 13, 3] that the paper's Theorem 12 reduces to: `n` crash-prone
//! asynchronous processes communicating *only* through atomic read/write
//! registers. A [`SharedAlgorithm`] is one process's program; in each of
//! its steps it issues at most one register operation (the standard
//! atomic-access granularity).

use sih_model::Value;
use std::fmt;

/// Identifies one register of the shared memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RegisterId(pub u32);

impl RegisterId {
    /// Dense index for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What a shared-memory program does in one step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SharedAction {
    /// Atomically read a register; the value arrives as the `last_read`
    /// argument of the **next** [`SharedAlgorithm::step`] call.
    Read(RegisterId),
    /// Atomically write a register.
    Write(RegisterId, Value),
    /// Decide a value and stop.
    Decide(Value),
    /// Do nothing this step (spin).
    Pause,
}

/// One process's deterministic shared-memory program.
///
/// The engine (local simulator or the message-passing bridge) drives the
/// program by calling [`step`] repeatedly: the return value is the next
/// atomic action; if the *previous* action was a `Read`, its result is
/// passed in `last_read` (`Some(contents)`, where `contents` is `None`
/// for a never-written register).
///
/// [`step`]: SharedAlgorithm::step
pub trait SharedAlgorithm {
    /// Produces the next action. `me`/`n` identify the process and system
    /// size; `last_read` carries the previous read's result, if the
    /// previous action was a read.
    fn step(&mut self, me: u32, n: usize, last_read: Option<Option<Value>>) -> SharedAction;

    /// Whether the program has decided (and stopped).
    fn done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_id_basics() {
        assert_eq!(RegisterId(3).index(), 3);
        assert_eq!(RegisterId(3).to_string(), "R3");
        assert!(RegisterId(1) < RegisterId(2));
    }

    #[test]
    fn actions_are_comparable() {
        assert_eq!(SharedAction::Pause, SharedAction::Pause);
        assert_ne!(SharedAction::Read(RegisterId(0)), SharedAction::Write(RegisterId(0), Value(1)));
    }
}
