//! Deterministic parallel sweep engine.
//!
//! Every claim and experiment of this reproduction is verified by
//! sweeping seeded runs over grids of failure patterns, system sizes and
//! scheduler seeds. The runs are mutually independent, so they fan out
//! across OS threads — but verification demands that the *output never
//! depends on the thread count*. The engine guarantees that:
//!
//! 1. **Canonical order.** The work grid is materialized up front as an
//!    indexed `Vec`; item `i` is the same job no matter who executes it.
//! 2. **Independent jobs.** Each job is a pure function of its index,
//!    its item and *worker-local* state that [`Simulation::reset`]
//!    rewinds to an identical fresh state before every run (covered by
//!    the pipeline tests) — so which worker runs a job cannot change its
//!    result.
//! 3. **Order-independent reduction.** Workers collect `(index, result)`
//!    pairs; after the join the pairs are sorted by index, yielding the
//!    exact `Vec` a serial loop would produce. Any fold the caller runs
//!    over that `Vec` (including order-sensitive floating-point means)
//!    is therefore bitwise identical for 1, 2 or N threads.
//!
//! Parallelism uses `std::thread::scope` behind the `parallel` feature
//! (default on); with the feature off — or `threads == 1` — the engine
//! degenerates to the plain serial loop, which is also the reference
//! the determinism tests compare against.
//!
//! [`Simulation::reset`]: crate::Simulation::reset
//!
//! # Example
//!
//! ```
//! use sih_runtime::sweep::{with_seeds, Sweep};
//!
//! let grid = with_seeds(&["a", "b"], 3); // ("a",0) ("a",1) ("a",2) ("b",0) …
//! let results = Sweep::new(0).run(grid, || |idx: usize, (tag, seed): (&str, u64)| {
//!     format!("{idx}:{tag}{seed}")
//! });
//! assert_eq!(results.len(), 6);
//! assert_eq!(results[4], "4:b1");
//! ```

#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "parallel")]
use std::sync::Mutex;

/// A deterministic sweep over an indexed grid of independent jobs.
///
/// `threads == 0` means one worker per available core; any thread count
/// (including 1) produces the identical result `Vec`.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    threads: usize,
}

impl Sweep {
    /// A sweep with the given worker count (`0` = one per core).
    pub fn new(threads: usize) -> Self {
        Sweep { threads }
    }

    /// The worker count a run of `jobs` jobs will actually use.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        if !cfg!(feature = "parallel") {
            return 1;
        }
        let hw = || std::thread::available_parallelism().map_or(1, usize::from);
        let t = if self.threads == 0 { hw() } else { self.threads };
        t.clamp(1, jobs.max(1))
    }

    /// Maps `worker(index, item)` over the grid, fanning across threads.
    ///
    /// `make_worker` is called once per worker thread to build its
    /// worker-local closure — the place to allocate reusable state such
    /// as a [`SimPool`](crate::SimPool). The returned `Vec` holds the
    /// results in grid order, bitwise identical for every thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic of any worker (a panicking job is a
    /// harness bug, not data).
    pub fn run<Item, R, W, F>(&self, items: Vec<Item>, make_worker: W) -> Vec<R>
    where
        Item: Send,
        R: Send,
        W: Fn() -> F + Sync,
        F: FnMut(usize, Item) -> R,
    {
        let threads = self.effective_threads(items.len());
        if threads <= 1 {
            let mut worker = make_worker();
            return items.into_iter().enumerate().map(|(i, item)| worker(i, item)).collect();
        }
        #[cfg(feature = "parallel")]
        {
            run_parallel(items, threads, &make_worker)
        }
        #[cfg(not(feature = "parallel"))]
        unreachable!("effective_threads is 1 without the parallel feature")
    }
}

#[cfg(feature = "parallel")]
fn run_parallel<Item, R, W, F>(items: Vec<Item>, threads: usize, make_worker: &W) -> Vec<R>
where
    Item: Send,
    R: Send,
    W: Fn() -> F + Sync,
    F: FnMut(usize, Item) -> R,
{
    let total = items.len();
    // Each slot is claimed by exactly one worker via the cursor; the
    // mutexes are uncontended and only make the hand-off safe.
    let slots: Vec<Mutex<Option<Item>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut worker = make_worker();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= total {
                            break;
                        }
                        let item = slots[idx]
                            .lock()
                            .expect("invariant: slot mutex never poisoned (worker panics re-raise below)")
                            .take()
                            .expect("invariant: the atomic cursor hands each index to exactly one worker");
                        local.push((idx, worker(idx, item)));
                    }
                    if !local.is_empty() {
                        collected
                            .lock()
                            .expect("invariant: result mutex never poisoned (worker panics re-raise below)")
                            .extend(local);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                // Re-raise the worker's own panic message instead of the
                // scope's generic "a scoped thread panicked".
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut indexed = collected
        .into_inner()
        .expect("invariant: the scope joined every worker, so no lock is held");
    debug_assert_eq!(indexed.len(), total, "every job produced exactly one result");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The canonical `items × seeds` grid: item-major, seeds `0..seeds`
/// innermost — the exact order of the serial
/// `for item { for seed { … } }` loops the engine replaces.
pub fn with_seeds<A: Clone>(items: &[A], seeds: u64) -> Vec<(A, u64)> {
    items.iter().flat_map(|item| (0..seeds).map(move |s| (item.clone(), s))).collect()
}

/// The canonical cartesian product `a × b`, `a`-major.
pub fn cross<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    a.iter().flat_map(|x| b.iter().map(move |y| (x.clone(), y.clone()))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as TestCounter, Ordering as TestOrdering};

    #[test]
    fn grid_helpers_enumerate_in_canonical_order() {
        assert_eq!(with_seeds(&['x', 'y'], 2), vec![('x', 0), ('x', 1), ('y', 0), ('y', 1)]);
        assert_eq!(cross(&[1, 2], &["a", "b"]), vec![(1, "a"), (1, "b"), (2, "a"), (2, "b")]);
        assert!(with_seeds(&['x'], 0).is_empty());
        assert!(cross(&[] as &[u8], &[1]).is_empty());
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        // A job whose result depends on index and item only.
        let reference: Vec<u64> =
            (0..200u64).map(|i| i.wrapping_mul(0x9E37).rotate_left(7)).collect();
        for threads in [1, 2, 3, 8] {
            let out = Sweep::new(threads)
                .run((0..200u64).collect(), || |_, x: u64| x.wrapping_mul(0x9E37).rotate_left(7));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn worker_local_state_is_per_thread() {
        // Each worker gets its own accumulator; the number of distinct
        // workers never exceeds the requested thread count, and every
        // job runs exactly once.
        let spawned = TestCounter::new(0);
        let ran = TestCounter::new(0);
        let results = Sweep::new(4).run((0..100).collect::<Vec<i32>>(), || {
            spawned.fetch_add(1, TestOrdering::Relaxed);
            |idx: usize, item: i32| {
                ran.fetch_add(1, TestOrdering::Relaxed);
                (idx as i32) - item
            }
        });
        assert_eq!(ran.load(TestOrdering::Relaxed), 100);
        assert!(spawned.load(TestOrdering::Relaxed) <= 4);
        assert!(results.iter().all(|&d| d == 0));
    }

    #[test]
    fn empty_grid_yields_empty_results() {
        let out: Vec<u8> = Sweep::new(0).run(Vec::<u8>::new(), || |_, x: u8| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_resolves_to_hardware_and_still_matches_serial() {
        let serial: Vec<String> = (0..37).map(|i| format!("{}", i * 3)).collect();
        let auto =
            Sweep::new(0).run((0..37).collect::<Vec<i64>>(), || |_, x: i64| format!("{}", x * 3));
        assert_eq!(auto, serial);
        assert!(Sweep::new(0).effective_threads(1000) >= 1);
        // Worker count is clamped to the job count — unless the
        // `parallel` feature is off, which forces 1.
        let expected = if cfg!(feature = "parallel") { 2 } else { 1 };
        assert_eq!(Sweep::new(5).effective_threads(2), expected);
    }

    #[cfg(feature = "parallel")]
    #[test]
    #[should_panic(expected = "job 13 exploded")]
    fn worker_panics_propagate() {
        let _ = Sweep::new(3).run((0..40usize).collect(), || {
            |idx: usize, _item: usize| {
                assert!(idx != 13, "job 13 exploded");
                idx
            }
        });
    }
}
