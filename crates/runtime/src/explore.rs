//! Bounded exhaustive exploration of schedules.
//!
//! For small systems and step bounds, [`explore`] enumerates **every**
//! schedule (process choice × message-delivery choice at each step) of a
//! run and checks a property at every reached state. Positive experiments
//! use this to strengthen randomized sampling: "no violation in any
//! schedule up to depth `d`" is a much stronger statement than "no
//! violation in 10k random schedules".
//!
//! The state space is a tree (no dedup: detector histories make most
//! states time-dependent anyway), so the cost is exponential in the depth
//! bound — callers keep `n ≤ 4` and `depth ≤ ~12`, which is where the
//! paper's interesting phenomena already show up.

use crate::automaton::Automaton;
use crate::scheduler::Choice;
use crate::sim::Simulation;
use sih_model::FailureDetector;

/// Aggregate result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// States visited (including the root).
    pub states: u64,
    /// Number of terminal states (all correct halted or no choice).
    pub terminals: u64,
    /// Number of states cut off by the depth bound.
    pub truncated: u64,
    /// First violation found, if any: the choice script reaching it and
    /// the checker's message.
    pub violation: Option<(Vec<Choice>, String)>,
}

impl ExploreResult {
    /// Whether the exploration found no violation.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively explores all schedules of `sim` up to `depth` further
/// steps, calling `check` on every reached state; returns on the first
/// violation.
///
/// `max_branch_deliveries` caps, per step, how many distinct pending
/// messages are tried as the delivery (always including "no delivery" and
/// always trying the oldest first); `usize::MAX` means every pending
/// message.
pub fn explore<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    depth: usize,
    max_branch_deliveries: usize,
    check: &mut F,
) -> ExploreResult
where
    A: Automaton + Clone,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let mut result = ExploreResult { states: 0, terminals: 0, truncated: 0, violation: None };
    let mut stack: Vec<Choice> = Vec::new();
    dfs(sim, fd, depth, max_branch_deliveries, check, &mut result, &mut stack);
    result
}

fn dfs<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    depth: usize,
    max_deliveries: usize,
    check: &mut F,
    result: &mut ExploreResult,
    path: &mut Vec<Choice>,
) where
    A: Automaton + Clone,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    if result.violation.is_some() {
        return;
    }
    result.states += 1;
    if let Err(msg) = check(sim) {
        result.violation = Some((path.clone(), msg));
        return;
    }
    if sim.all_correct_halted() {
        result.terminals += 1;
        return;
    }
    if depth == 0 {
        result.truncated += 1;
        return;
    }

    // Enumerate choices: needs a mutable view for sched_state, so clone.
    let mut probe = sim.clone();
    let view = probe.sched_state();
    let schedulable: Vec<_> = view.schedulable().collect();
    if schedulable.is_empty() {
        result.terminals += 1;
        return;
    }
    for p in schedulable {
        let pending = view.pending_count(p);
        let mut deliveries: Vec<Option<usize>> = vec![None];
        let tried = pending.min(max_deliveries);
        deliveries.extend((0..tried).map(Some));
        for deliver in deliveries {
            let mut child = sim.clone();
            let choice = Choice { p, deliver };
            child.step(choice, fd);
            path.push(choice);
            dfs(&child, fd, depth - 1, max_deliveries, check, result, path);
            path.pop();
            if result.violation.is_some() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Effects, StepInput};
    use sih_model::{FailurePattern, NoDetector, ProcessId, Value};

    /// Decides its own id on its second step.
    #[derive(Clone, Debug, Default)]
    struct TwoStepDecider {
        steps: u32,
        done: bool,
    }
    impl Automaton for TwoStepDecider {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            self.steps += 1;
            if self.steps == 2 && !self.done {
                self.done = true;
                eff.decide(Value::of_process(input.me));
                eff.halt();
            }
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn explores_all_interleavings_of_two_processes() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut no_check = |_: &Simulation<TwoStepDecider>| Ok(());
        let res = explore(&sim, &NoDetector, 4, usize::MAX, &mut no_check);
        assert!(res.ok());
        // Each process needs exactly 2 steps; all interleavings of the
        // 4-step runs terminate: C(4,2) = 6 terminal orderings.
        assert_eq!(res.terminals, 6);
        assert!(res.states > 6);
        assert_eq!(res.truncated, 0);
    }

    #[test]
    fn depth_bound_truncates() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut no_check = |_: &Simulation<TwoStepDecider>| Ok(());
        let res = explore(&sim, &NoDetector, 1, usize::MAX, &mut no_check);
        assert!(res.truncated > 0);
        assert_eq!(res.terminals, 0);
    }

    #[test]
    fn delivery_cap_limits_branching() {
        // With messages pending, capping tried deliveries shrinks the
        // tree but still visits the no-delivery branch.
        #[derive(Clone, Debug, Default)]
        struct Sender {
            sent: bool,
        }
        impl Automaton for Sender {
            type Msg = u8;
            fn step(
                &mut self,
                input: crate::automaton::StepInput<u8>,
                eff: &mut crate::automaton::Effects<u8>,
            ) {
                if !self.sent {
                    self.sent = true;
                    // Three messages to the other process.
                    let other = ProcessId(1 - input.me.0);
                    eff.send(other, 1);
                    eff.send(other, 2);
                    eff.send(other, 3);
                }
            }
        }
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut no_check = |_: &Simulation<Sender>| Ok(());
        let uncapped = explore(&sim, &NoDetector, 3, usize::MAX, &mut no_check);
        let mut no_check2 = |_: &Simulation<Sender>| Ok(());
        let capped = explore(&sim, &NoDetector, 3, 1, &mut no_check2);
        assert!(capped.states < uncapped.states);
        assert!(capped.states > 1);
    }

    #[test]
    fn violation_reports_reaching_script() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        // "Violation": p1 decided.
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let res = explore(&sim, &NoDetector, 6, usize::MAX, &mut check);
        let (script, msg) = res.violation.expect("must find the violation");
        assert_eq!(msg, "p1 decided");
        // The reaching script must contain exactly two steps of p1 at its
        // end-state (p1 decides on its second step).
        let p1_steps = script.iter().filter(|c| c.p == ProcessId(1)).count();
        assert_eq!(p1_steps, 2);
    }
}
