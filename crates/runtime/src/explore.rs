//! Bounded exhaustive exploration of schedules, with deterministic
//! state-space reduction.
//!
//! For small systems and step bounds, the explorer enumerates **every**
//! schedule (process choice × message-delivery choice at each step) of a
//! run and checks a property at every reached state. Positive experiments
//! use this to strengthen randomized sampling: "no violation in any
//! schedule up to depth `d`" is a much stronger statement than "no
//! violation in 10k random schedules".
//!
//! The raw schedule tree is exponential in the depth bound, but most of
//! it is redundant, and the engine removes the redundancy without giving
//! up determinism:
//!
//! * **Fingerprint dedup** ([`ExploreConfig::dedup`]) — every state is
//!   hashed into a canonical 64-bit fingerprint
//!   ([`Simulation::fingerprint`]) of its checker-visible projection; a
//!   state revisited with the same or less remaining depth is skipped.
//!   This is sound even though failure-detector histories are
//!   time-dependent, because global time *is* the step count: all states
//!   at one tree depth share `now`, `now` is hashed, and detector
//!   outputs are pure functions of `(process, time)`.
//! * **Sleep-set partial-order reduction** ([`ExploreConfig::por`]) —
//!   when two adjacent steps of *different* processes both produce no
//!   time-stamped checker events ([`StepReport::quiet`]) and their
//!   detector outputs are stable across the two step times, the two
//!   orders are check-equivalent; only the canonical order is explored.
//! * **Parallel frontier** ([`ExploreConfig::frontier_depth`],
//!   [`explore_par`]) — the root is expanded breadth-first to a
//!   `k`-step prefix frontier and the subtrees fan out across the
//!   deterministic [`Sweep`] engine; results merge in canonical prefix
//!   order, so the full [`ExploreResult`] — counters and the violation
//!   script — is bitwise identical for any thread count.
//! * **No per-node double clone** — children are materialized with
//!   allocation-reusing [`Clone::clone_from`] into a free-list pool, and
//!   choice enumeration uses the non-mutating
//!   [`Simulation::schedulable_set`] view instead of cloning a probe.
//!
//! Both reductions assume every pending message is a candidate
//! delivery. A finite [`ExploreConfig::max_deliveries`] cap samples the
//! first `cap` messages in **arrival order** — a projection that
//! multiset-equal fingerprints do not determine and that sleep-set
//! reorderings do not preserve — so a finite cap forces `dedup` and
//! `por` off and the run is the plain capped enumeration (see
//! [`ExploreConfig::max_deliveries`]).
//!
//! The reported violation is the first one in the reduced canonical
//! search order; with reductions off it is exactly the
//! lexicographically-least violating choice script (see [`Choice`]'s
//! order). For a fixed [`ExploreConfig`] the result never depends on the
//! thread count or the process's hash seed; counters *do* legitimately
//! differ across configs (dedup on/off, frontier depth) — reduction
//! changes how many states exist, not which verdict is reached.
//!
//! [`Sweep`]: crate::sweep::Sweep
//! [`StepReport::quiet`]: crate::StepReport::quiet

use crate::automaton::Automaton;
use crate::scheduler::Choice;
use crate::sim::Simulation;
use crate::sweep::Sweep;
use sih_model::FailureDetector;
use std::collections::BTreeMap;
use std::fmt;
use std::mem;

/// Tuning knobs of an exploration. Construct with [`ExploreConfig::new`]
/// and refine with the builder methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum further steps from the root (tree depth bound).
    pub depth: usize,
    /// Per step, how many distinct pending messages are tried as the
    /// delivery (always including "no delivery", always oldest-first);
    /// `usize::MAX` tries every pending message.
    ///
    /// A finite cap samples the first `cap` messages in **arrival
    /// order**. The reductions cannot see that order: the fingerprint
    /// hashes queues as order-insensitive multisets, and a sleep-set
    /// reordering permutes arrivals, so two states the reductions treat
    /// as equivalent can expand *different* capped child sets — dedup or
    /// POR could then skip the only capped path to a violation. Both
    /// reductions are therefore forced **off** whenever
    /// `max_deliveries < usize::MAX`; `dedup`/`por` are ignored and the
    /// run is the plain capped enumeration.
    pub max_deliveries: usize,
    /// Skip states whose canonical fingerprint was already explored at
    /// equal or greater remaining depth.
    pub dedup: bool,
    /// Sleep-set partial-order reduction: skip the non-canonical order
    /// of commuting adjacent step pairs.
    pub por: bool,
    /// Worker threads for the parallel frontier (`0` = one per core);
    /// only consulted by [`explore_par`], and never changes the result.
    pub threads: usize,
    /// Prefix depth expanded breadth-first into parallel subtree jobs;
    /// `0` explores the whole tree as one serial job.
    pub frontier_depth: usize,
}

impl ExploreConfig {
    /// Defaults: explore to `depth`, try every delivery, both reductions
    /// on, serial (no frontier).
    pub fn new(depth: usize) -> Self {
        ExploreConfig {
            depth,
            max_deliveries: usize::MAX,
            dedup: true,
            por: true,
            threads: 1,
            frontier_depth: 0,
        }
    }

    /// Sets the per-step delivery cap. A finite cap forces both
    /// reductions off — see [`ExploreConfig::max_deliveries`].
    #[must_use]
    pub fn max_deliveries(mut self, cap: usize) -> Self {
        self.max_deliveries = cap;
        self
    }

    /// Enables or disables fingerprint dedup.
    #[must_use]
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Enables or disables the partial-order reduction.
    #[must_use]
    pub fn por(mut self, on: bool) -> Self {
        self.por = on;
        self
    }

    /// Sets the worker-thread count (`0` = one per core).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the parallel-frontier prefix depth.
    #[must_use]
    pub fn frontier_depth(mut self, k: usize) -> Self {
        self.frontier_depth = k;
        self
    }

    /// The configuration the engine actually runs: a finite delivery cap
    /// forces both reductions off, because capped enumeration samples
    /// queues by arrival order — a projection neither the multiset
    /// fingerprint nor sleep-set reordering preserves (see
    /// [`ExploreConfig::max_deliveries`]).
    fn effective(&self) -> ExploreConfig {
        if self.max_deliveries == usize::MAX {
            *self
        } else {
            ExploreConfig { dedup: false, por: false, ..*self }
        }
    }
}

/// Aggregate result of an exploration.
///
/// Derives `Eq` so determinism tests can assert the *entire* result —
/// counters and violation script — is identical across thread counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreResult {
    /// States visited (including the root, excluding deduped revisits).
    pub states: u64,
    /// Terminal states (all correct halted, or nobody schedulable).
    pub terminals: u64,
    /// States cut off by the depth bound.
    pub truncated: u64,
    /// Revisited states skipped by fingerprint dedup.
    pub deduped: u64,
    /// Child branches skipped by the partial-order reduction.
    pub pruned: u64,
    /// Approximate payload size of the dedup tables: entries ×
    /// `(key + value)` bytes, summed over subtrees (tree overhead of the
    /// `BTreeMap` itself is not counted).
    pub table_bytes: u64,
    /// First violation in canonical search order, if any: the choice
    /// script reaching it (from the exploration root) and the checker's
    /// message.
    pub violation: Option<(Vec<Choice>, String)>,
}

impl ExploreResult {
    const EMPTY: ExploreResult = ExploreResult {
        states: 0,
        terminals: 0,
        truncated: 0,
        deduped: 0,
        pruned: 0,
        table_bytes: 0,
        violation: None,
    };

    /// Whether the exploration found no violation.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively explores all schedules of `sim` up to `depth` further
/// steps, calling `check` on every reached state; returns on the first
/// violation.
///
/// Thin wrapper over [`explore_with`] with the [`ExploreConfig::new`]
/// defaults — both reductions **on**, serial. Pass a config with
/// `.dedup(false).por(false)` for the unreduced enumeration.
///
/// A finite `max_branch_deliveries` forces the reductions off (see
/// [`ExploreConfig::max_deliveries`]), so capped legacy calls enumerate
/// exactly the schedules the original unreduced explorer did.
pub fn explore<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    depth: usize,
    max_branch_deliveries: usize,
    check: &mut F,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    explore_with(sim, fd, &ExploreConfig::new(depth).max_deliveries(max_branch_deliveries), check)
}

/// Explores under an explicit [`ExploreConfig`], single-threaded.
///
/// Honors `cfg.frontier_depth` (running the subtree jobs serially in
/// canonical order, stopping at the first violating subtree), so its
/// result is bitwise identical to [`explore_par`] with the same config
/// at any thread count. `cfg.threads` is ignored here. A finite
/// `cfg.max_deliveries` forces `dedup` and `por` off (see
/// [`ExploreConfig::max_deliveries`]).
pub fn explore_with<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    check: &mut F,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let cfg = &cfg.effective();
    let frontier = expand_frontier(sim, fd, cfg, check);
    if frontier.partial.violation.is_some() {
        return frontier.partial;
    }
    let remaining = cfg.depth - cfg.frontier_depth.min(cfg.depth);
    let mut acc = frontier.partial;
    for (prefix, root) in frontier.jobs {
        let sub = run_subtree(&root, fd, cfg, remaining, check);
        // Stopping at the first violating subtree keeps the serial
        // driver's early exit *and* matches the parallel merge exactly.
        if merge_one(&mut acc, prefix, sub) {
            break;
        }
    }
    acc
}

/// Explores with the parallel frontier: the `cfg.frontier_depth`-step
/// prefix tree is expanded serially, its subtrees fan out across
/// [`Sweep::new`]`(cfg.threads)`, and the results merge in canonical
/// prefix order.
///
/// `make_check` is called once per worker to build its checker closure;
/// a checker must be a pure function of the checker-visible state (see
/// [`Simulation::fingerprint`]), which is what makes the fan-out sound.
/// The merged result — every counter and the violation script — is
/// bitwise identical for any `cfg.threads`, including `1`: when a
/// violation exists, it is taken from the first violating subtree in
/// canonical order and the counters of all later subtrees are discarded
/// (not merely "whatever finished before the abort").
pub fn explore_par<A, D, W, C>(
    sim: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    make_check: W,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug + Send,
    A::Msg: Send,
    D: FailureDetector + ?Sized + Sync,
    W: Fn() -> C + Sync,
    C: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let cfg = &cfg.effective();
    let mut root_check = make_check();
    let frontier = expand_frontier(sim, fd, cfg, &mut root_check);
    drop(root_check);
    if frontier.partial.violation.is_some() {
        return frontier.partial;
    }
    let remaining = cfg.depth - cfg.frontier_depth.min(cfg.depth);
    let (prefixes, roots): (Vec<_>, Vec<_>) = frontier.jobs.into_iter().unzip();
    let results = Sweep::new(cfg.threads).run(roots, || {
        let mut check = make_check();
        move |_idx: usize, root: Simulation<A>| run_subtree(&root, fd, cfg, remaining, &mut check)
    });
    merge(frontier.partial, prefixes.into_iter().zip(results))
}

/// The serially-expanded prefix tree: counters for its internal nodes
/// plus the frontier subtree roots in canonical (lexicographic-prefix)
/// order.
struct Frontier<A: Automaton> {
    partial: ExploreResult,
    jobs: Vec<(Vec<Choice>, Simulation<A>)>,
}

/// Expands the root breadth-first to `cfg.frontier_depth` steps,
/// checking (and counting) every internal node. Internal levels use no
/// dedup or POR — the prefix tree is tiny and keeping it reduction-free
/// keeps subtree jobs independent of each other, which is what makes
/// the fan-out thread-count-deterministic.
fn expand_frontier<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    check: &mut F,
) -> Frontier<A>
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let k = cfg.frontier_depth.min(cfg.depth);
    let mut partial = ExploreResult::EMPTY;
    let mut level: Vec<(Vec<Choice>, Simulation<A>)> = vec![(Vec::new(), sim.clone())];
    for _ in 0..k {
        let mut next: Vec<(Vec<Choice>, Simulation<A>)> = Vec::new();
        for (prefix, node) in level {
            partial.states += 1;
            if let Err(msg) = check(&node) {
                partial.violation = Some((prefix, msg));
                return Frontier { partial, jobs: Vec::new() };
            }
            if node.all_correct_halted() {
                partial.terminals += 1;
                continue;
            }
            let schedulable = node.schedulable_set();
            if schedulable.is_empty() {
                partial.terminals += 1;
                continue;
            }
            for p in schedulable.iter() {
                let tried = node.network().pending_count(p).min(cfg.max_deliveries);
                for d in 0..=tried {
                    let choice = Choice { p, deliver: d.checked_sub(1) };
                    let mut child = node.clone();
                    child.step(choice, fd);
                    let mut cp = prefix.clone();
                    cp.push(choice);
                    next.push((cp, child));
                }
            }
        }
        level = next;
    }
    debug_assert!(
        level.windows(2).all(|w| w[0].0 < w[1].0),
        "frontier prefixes must come out in canonical lexicographic order"
    );
    Frontier { partial, jobs: level }
}

/// Runs the reduced serial DFS over one subtree.
fn run_subtree<A, D, F>(
    root: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    remaining: usize,
    check: &mut F,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let mut dfs = Dfs {
        fd,
        max_deliveries: cfg.max_deliveries,
        dedup: cfg.dedup,
        por: cfg.por,
        check,
        table: BTreeMap::new(),
        pool: Vec::new(),
        path: Vec::new(),
        result: ExploreResult::EMPTY,
    };
    dfs.node(root, remaining, &[]);
    dfs.result.table_bytes =
        dfs.table.len() as u64 * (mem::size_of::<u64>() + mem::size_of::<usize>()) as u64;
    dfs.result
}

/// Folds subtree results into the frontier's partial result in canonical
/// order. The first violating subtree contributes its (partial) counters
/// and its violation, prefixed with the subtree's choice prefix; all
/// later subtrees are discarded so the merged result is independent of
/// how many of them happened to run.
fn merge(
    mut acc: ExploreResult,
    subs: impl IntoIterator<Item = (Vec<Choice>, ExploreResult)>,
) -> ExploreResult {
    for (prefix, sub) in subs {
        if merge_one(&mut acc, prefix, sub) {
            break;
        }
    }
    acc
}

/// Accumulates one subtree result; returns whether it carried the
/// violation that ends the merge.
fn merge_one(acc: &mut ExploreResult, prefix: Vec<Choice>, sub: ExploreResult) -> bool {
    acc.states += sub.states;
    acc.terminals += sub.terminals;
    acc.truncated += sub.truncated;
    acc.deduped += sub.deduped;
    acc.pruned += sub.pruned;
    acc.table_bytes += sub.table_bytes;
    if let Some((script, msg)) = sub.violation {
        let mut full = prefix;
        full.extend(script);
        acc.violation = Some((full, msg));
        return true;
    }
    false
}

/// The serial reduced depth-first search over one subtree.
struct Dfs<'a, A: Automaton, D: ?Sized, F> {
    fd: &'a D,
    max_deliveries: usize,
    dedup: bool,
    por: bool,
    check: &'a mut F,
    /// Fingerprint → largest remaining depth already explored from it
    /// (`usize::MAX` for dead ends, whose future is empty at any depth).
    /// `BTreeMap`, not `HashMap`: iteration-order determinism and no
    /// process-seeded hasher (DESIGN.md §6).
    table: BTreeMap<u64, usize>,
    /// Free list of simulation buffers, recycled across tree edges.
    pool: Vec<Simulation<A>>,
    path: Vec<Choice>,
    result: ExploreResult,
}

impl<A, D, F> Dfs<'_, A, D, F>
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    /// Visits one state: dedup, check, classify, expand. `skip` is the
    /// sleep set inherited from the parent — sibling choices whose
    /// reordering with the step that reached this node is already
    /// covered by an earlier branch.
    fn node(&mut self, sim: &Simulation<A>, remaining: usize, skip: &[Choice]) {
        let fp = if self.dedup {
            let fp = sim.fingerprint();
            if let Some(&seen) = self.table.get(&fp) {
                if seen >= remaining {
                    self.result.deduped += 1;
                    return;
                }
            }
            Some(fp)
        } else {
            None
        };

        self.result.states += 1;
        if let Err(msg) = (self.check)(sim) {
            self.result.violation = Some((self.path.clone(), msg));
            return;
        }

        let schedulable = sim.schedulable_set();
        let dead_end = sim.all_correct_halted() || schedulable.is_empty();
        if let Some(fp) = fp {
            // A dead end's (empty) future is covered at any revisit depth.
            self.table.insert(fp, if dead_end { usize::MAX } else { remaining });
        }
        if dead_end {
            self.result.terminals += 1;
            return;
        }
        if remaining == 0 {
            self.result.truncated += 1;
            return;
        }

        let t1 = sim.now().next();
        let t2 = t1.next();
        // Earlier siblings at this node, with their quietness — the raw
        // material of the children's sleep sets.
        let mut earlier: Vec<(Choice, bool)> = Vec::new();
        let mut child_skip: Vec<Choice> = Vec::new();
        for p in schedulable.iter() {
            let tried = sim.network().pending_count(p).min(self.max_deliveries);
            for d in 0..=tried {
                let choice = Choice { p, deliver: d.checked_sub(1) };
                if self.por && skip.contains(&choice) {
                    self.result.pruned += 1;
                    continue;
                }
                let mut child = match self.pool.pop() {
                    Some(mut buf) => {
                        buf.clone_from(sim);
                        buf
                    }
                    None => sim.clone(),
                };
                let report = child.step(choice, self.fd);

                // Sleep set for this child: every *earlier* quiet sibling
                // of a different process, when both steps' detector
                // outputs are stable across {t1, t2} and both processes
                // are still alive at t2. Then `choice · sibling` reaches
                // a state check-equivalent to `sibling · choice`, whose
                // subtree an earlier branch already explored at the same
                // remaining depth — see DESIGN.md for the full argument.
                child_skip.clear();
                if self.por
                    && report.quiet()
                    && sim.pattern().is_alive(p, t2)
                    && self.fd.output(p, t1) == self.fd.output(p, t2)
                {
                    for &(prev, prev_quiet) in &earlier {
                        if prev_quiet
                            && prev.p != p
                            && sim.pattern().is_alive(prev.p, t2)
                            && self.fd.output(prev.p, t1) == self.fd.output(prev.p, t2)
                        {
                            child_skip.push(prev);
                        }
                    }
                }

                self.path.push(choice);
                self.node(&child, remaining - 1, &child_skip);
                self.path.pop();
                self.pool.push(child);
                if self.result.violation.is_some() {
                    return;
                }
                earlier.push((choice, report.quiet()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Effects, StepInput};
    use sih_model::{FailurePattern, NoDetector, ProcessId, Value};

    /// Decides its own id on its second step.
    #[derive(Clone, Debug, Default)]
    struct TwoStepDecider {
        steps: u32,
        done: bool,
    }
    impl Automaton for TwoStepDecider {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            self.steps += 1;
            if self.steps == 2 && !self.done {
                self.done = true;
                eff.decide(Value::of_process(input.me));
                eff.halt();
            }
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    fn unreduced(depth: usize) -> ExploreConfig {
        ExploreConfig::new(depth).dedup(false).por(false)
    }

    #[test]
    fn explores_all_interleavings_of_two_processes() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut no_check = |_: &Simulation<TwoStepDecider>| Ok(());
        let res = explore_with(&sim, &NoDetector, &unreduced(4), &mut no_check);
        assert!(res.ok());
        // Each process needs exactly 2 steps; all interleavings of the
        // 4-step runs terminate: C(4,2) = 6 terminal orderings.
        assert_eq!(res.terminals, 6);
        assert!(res.states > 6);
        assert_eq!(res.truncated, 0);
        assert_eq!(res.deduped, 0);
        assert_eq!(res.pruned, 0);
        assert_eq!(res.table_bytes, 0);
    }

    #[test]
    fn reduction_shrinks_the_tree_and_preserves_the_verdict() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut c1 = |_: &Simulation<TwoStepDecider>| Ok(());
        let full = explore_with(&sim, &NoDetector, &unreduced(4), &mut c1);
        let mut c2 = |_: &Simulation<TwoStepDecider>| Ok(());
        let reduced = explore_with(&sim, &NoDetector, &ExploreConfig::new(4), &mut c2);
        assert_eq!(full.ok(), reduced.ok());
        assert!(reduced.states < full.states, "{} !< {}", reduced.states, full.states);
        assert!(reduced.deduped + reduced.pruned > 0);
        assert!(reduced.table_bytes > 0);
        // Decision *times* are checker-visible, so distinct-time terminals
        // must stay distinct: dedup only merges exact projections.
        assert!(reduced.terminals >= 4);
    }

    #[test]
    fn depth_bound_truncates() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut no_check = |_: &Simulation<TwoStepDecider>| Ok(());
        let res = explore(&sim, &NoDetector, 1, usize::MAX, &mut no_check);
        assert!(res.truncated > 0);
        assert_eq!(res.terminals, 0);
    }

    /// Three messages to the other process on the first step.
    #[derive(Clone, Debug, Default)]
    struct Sender {
        sent: bool,
    }
    impl Automaton for Sender {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            if !self.sent {
                self.sent = true;
                let other = ProcessId(1 - input.me.0);
                eff.send(other, 1);
                eff.send(other, 2);
                eff.send(other, 3);
            }
        }
    }

    #[test]
    fn delivery_cap_limits_branching() {
        // With messages pending, capping tried deliveries shrinks the
        // tree but still visits the no-delivery branch.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut no_check = |_: &Simulation<Sender>| Ok(());
        let uncapped = explore_with(&sim, &NoDetector, &unreduced(3), &mut no_check);
        let mut no_check2 = |_: &Simulation<Sender>| Ok(());
        let capped =
            explore_with(&sim, &NoDetector, &unreduced(3).max_deliveries(1), &mut no_check2);
        assert!(capped.states < uncapped.states);
        assert!(capped.states > 1);
    }

    #[test]
    fn finite_delivery_cap_forces_reductions_off() {
        // Capped enumeration samples the first `cap` pending messages in
        // arrival order — a projection the multiset fingerprint does not
        // determine and sleep-set reordering does not preserve — so a
        // config requesting the reductions under a finite cap must run
        // the plain capped enumeration instead.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut c1 = |_: &Simulation<Sender>| Ok(());
        let requested =
            explore_with(&sim, &NoDetector, &ExploreConfig::new(4).max_deliveries(1), &mut c1);
        let mut c2 = |_: &Simulation<Sender>| Ok(());
        let explicit = explore_with(&sim, &NoDetector, &unreduced(4).max_deliveries(1), &mut c2);
        assert_eq!(requested, explicit);
        assert_eq!(requested.deduped, 0);
        assert_eq!(requested.pruned, 0);
        assert_eq!(requested.table_bytes, 0);
        // Same forcing on the parallel-frontier path.
        let par = explore_par(
            &sim,
            &NoDetector,
            &ExploreConfig::new(4).max_deliveries(1).frontier_depth(2).threads(2),
            || |_: &Simulation<Sender>| Ok(()),
        );
        assert_eq!(par, explicit);
    }

    #[test]
    fn por_prunes_commuting_quiet_steps() {
        // All Sender steps are quiet (sends only) and NoDetector is
        // trivially stable, so adjacent steps of different processes
        // commute and the sleep sets must fire.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut c1 = |_: &Simulation<Sender>| Ok(());
        let por_only =
            explore_with(&sim, &NoDetector, &ExploreConfig::new(4).dedup(false).por(true), &mut c1);
        let mut c2 = |_: &Simulation<Sender>| Ok(());
        let full = explore_with(&sim, &NoDetector, &unreduced(4), &mut c2);
        assert!(por_only.pruned > 0);
        assert!(por_only.states < full.states);
        assert_eq!(por_only.ok(), full.ok());
    }

    #[test]
    fn violation_reports_reaching_script() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        // "Violation": p1 decided.
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let res = explore(&sim, &NoDetector, 6, usize::MAX, &mut check);
        let (script, msg) = res.violation.expect("must find the violation");
        assert_eq!(msg, "p1 decided");
        // The reaching script must contain exactly two steps of p1 at its
        // end-state (p1 decides on its second step).
        let p1_steps = script.iter().filter(|c| c.p == ProcessId(1)).count();
        assert_eq!(p1_steps, 2);
    }

    #[test]
    fn unreduced_violation_script_is_lexicographically_least() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let res = explore_with(&sim, &NoDetector, &unreduced(6), &mut check);
        let (script, _) = res.violation.expect("must find the violation");
        // Unreduced DFS visits scripts in lexicographic order (ascending
        // siblings, prefixes first), so the first violation found is the
        // lex-least violating script: p0 halts after two steps, making
        // [p0, p0, p1, p1] the smallest schedule whose end state has two
        // p1 steps.
        let expected: Vec<Choice> =
            [0, 0, 1, 1].into_iter().map(|p| Choice { p: ProcessId(p), deliver: None }).collect();
        assert_eq!(script, expected);
        // The frontier fan-out's canonical merge must settle on the same
        // script.
        let par =
            explore_par(&sim, &NoDetector, &unreduced(6).frontier_depth(2).threads(2), || {
                |s: &Simulation<TwoStepDecider>| {
                    if s.trace().decision_of(ProcessId(1)).is_some() {
                        Err("p1 decided".to_owned())
                    } else {
                        Ok(())
                    }
                }
            });
        let (par_script, _) = par.violation.expect("must find the violation");
        assert_eq!(script, par_script);
    }

    #[test]
    fn frontier_and_thread_count_leave_the_result_identical() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let cfg = ExploreConfig::new(5).frontier_depth(2);
        let make_check = || |_: &Simulation<Sender>| Ok(());
        let reference = explore_par(&sim, &NoDetector, &cfg.threads(1), make_check);
        for threads in [2, 4, 8] {
            let out = explore_par(&sim, &NoDetector, &cfg.threads(threads), make_check);
            assert_eq!(out, reference, "threads = {threads}");
        }
        // The serial driver agrees with the parallel one, config held fixed.
        let mut serial_check = |_: &Simulation<Sender>| Ok(());
        let serial = explore_with(&sim, &NoDetector, &cfg, &mut serial_check);
        assert_eq!(serial, reference);
    }

    #[test]
    fn old_wrapper_matches_default_config() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut c1 = |_: &Simulation<TwoStepDecider>| Ok(());
        let wrapped = explore(&sim, &NoDetector, 4, usize::MAX, &mut c1);
        let mut c2 = |_: &Simulation<TwoStepDecider>| Ok(());
        let configured = explore_with(&sim, &NoDetector, &ExploreConfig::new(4), &mut c2);
        assert_eq!(wrapped, configured);
    }

    #[test]
    fn dedup_table_reexplores_revisits_with_more_remaining_depth() {
        // In a live run every revisit carries equal remaining depth (the
        // fingerprint hashes `now` and every step advances it), so the
        // table's `seen >= remaining` branch is driven directly here:
        // seed the table as if the root had been explored with a budget
        // too small to reach the violation, then visit it with a larger
        // one — the visit must re-explore, find the deep violation, and
        // raise the recorded budget.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let fp = sim.fingerprint();
        // "p1 decided" needs two p1 steps — unreachable within 1 step.
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let mut dfs = Dfs {
            fd: &NoDetector,
            max_deliveries: usize::MAX,
            dedup: true,
            por: false,
            check: &mut check,
            table: BTreeMap::new(),
            pool: Vec::new(),
            path: Vec::new(),
            result: ExploreResult::EMPTY,
        };
        dfs.table.insert(fp, 1);
        dfs.node(&sim, 3, &[]);
        assert_eq!(dfs.result.deduped, 0, "larger remaining budget must re-explore");
        let (script, _) = dfs.result.violation.expect("violation beyond the seeded budget");
        assert_eq!(script.iter().filter(|c| c.p == ProcessId(1)).count(), 2);
        assert_eq!(dfs.table.get(&fp), Some(&3), "re-exploring must raise the recorded budget");

        // A revisit at equal (or smaller) remaining budget is skipped.
        let mut check2 = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let mut dfs2 = Dfs {
            fd: &NoDetector,
            max_deliveries: usize::MAX,
            dedup: true,
            por: false,
            check: &mut check2,
            table: BTreeMap::new(),
            pool: Vec::new(),
            path: Vec::new(),
            result: ExploreResult::EMPTY,
        };
        dfs2.table.insert(fp, 3);
        dfs2.node(&sim, 3, &[]);
        assert_eq!(dfs2.result.deduped, 1);
        assert_eq!(dfs2.result.states, 0);
        assert_eq!(dfs2.result.violation, None);
    }

    #[test]
    fn dedup_respects_remaining_depth() {
        // End-to-end cross-check of the same table logic the unit test
        // above drives directly: reduced and unreduced exploration agree
        // on the verdict at every depth.
        let pattern = FailurePattern::all_correct(2);
        for depth in 1..=5 {
            let sim = Simulation::new(vec![Sender::default(); 2], pattern.clone());
            let mut c1 = |_: &Simulation<Sender>| Ok(());
            let full = explore_with(&sim, &NoDetector, &unreduced(depth), &mut c1);
            let mut c2 = |_: &Simulation<Sender>| Ok(());
            let red = explore_with(&sim, &NoDetector, &ExploreConfig::new(depth), &mut c2);
            assert_eq!(full.ok(), red.ok(), "depth {depth}");
            assert!(red.states <= full.states, "depth {depth}");
        }
    }
}
