//! Bounded exhaustive exploration of schedules, with deterministic
//! state-space reduction.
//!
//! For small systems and step bounds, the explorer enumerates **every**
//! schedule (process choice × message-delivery choice at each step) of a
//! run and checks a property at every reached state. Positive experiments
//! use this to strengthen randomized sampling: "no violation in any
//! schedule up to depth `d`" is a much stronger statement than "no
//! violation in 10k random schedules".
//!
//! The raw schedule tree is exponential in the depth bound, but most of
//! it is redundant, and the engine removes the redundancy without giving
//! up determinism:
//!
//! * **Fingerprint dedup** ([`ExploreConfig::dedup`]) — every state is
//!   hashed into a canonical 64-bit fingerprint
//!   ([`Simulation::fingerprint`]) of its checker-visible projection; a
//!   state revisited under the same sleep context with the same or less
//!   remaining depth is skipped. This is sound even though
//!   failure-detector histories are time-dependent, because global time
//!   *is* the step count: all states at one tree depth share `now`,
//!   `now` is hashed, and detector outputs are pure functions of
//!   `(process, time)`.
//! * **Canonical content-ordered expansion** — each process's delivery
//!   menu is enumerated sorted by memoized envelope fingerprint (ties
//!   oldest-first), and sleep sets key on *content*
//!   ([`crate::dpor::SleepKey`]: process + envelope fingerprint), never
//!   on queue position. Two states whose queues are permutations of each
//!   other therefore expand pairwise fingerprint-equal children with
//!   *identical* sleep sets — the whole expansion is a pure function of
//!   the multiset fingerprint, which is what keeps dedup on the
//!   order-insensitive hash sound with sleep sets and delivery caps on.
//! * **Sleep-set partial-order reduction** ([`ExploreConfig::por`]) —
//!   when two adjacent steps of *different* processes both produce no
//!   time-stamped checker events ([`StepReport::quiet`]) and their
//!   detector outputs are stable across the two step times, the two
//!   orders are check-equivalent; only the canonical order is explored.
//! * **Source-DPOR** ([`ExploreConfig::dpor`]) — upgrades the sleep
//!   sets from depth-1 to *persistent*: a sleeping choice stays asleep
//!   down the path until a step it is dependent with executes, judged
//!   with happens-before vector clocks ([`crate::hb`]) — a send into a
//!   sleeping process's queue whose stamp is concurrent with that
//!   process's clock is a *race* and wakes it (see [`crate::dpor`]).
//!   The choices actually expanded at a node — enabled minus sleeping —
//!   form its source set. Strictly stronger pruning than `por`.
//! * **Shared sharded fingerprint table** — dedup claims go through one
//!   table shared by every worker, sharded by fingerprint high bits so
//!   workers rarely contend. A claim is a pure function of the key
//!   `(state fingerprint, sleep-context fingerprint)`: whichever visit
//!   arrives first expands the identical subtree, so every counter is a
//!   sum of per-key contributions and the full [`ExploreResult`] is
//!   bitwise identical for any thread count, frontier depth, or visit
//!   order.
//! * **Parallel frontier** ([`ExploreConfig::frontier_depth`],
//!   [`explore_par`]) — the root is expanded breadth-first into subtree
//!   jobs (auto-sized to the worker count when `frontier_depth == 0`)
//!   that fan out across the deterministic [`Sweep`] engine,
//!   work-stealing off its atomic cursor. Thanks to the shared table the
//!   partition never changes the counters; if any worker finds a
//!   violation, the exploration is re-run serially so the reported
//!   violation is the canonical (first in DFS order) one.
//! * **No per-node double clone** — children are materialized with
//!   allocation-reusing [`Clone::clone_from`] into free-list pools
//!   (simulations, happens-before shadows, sleep sets), and choice
//!   enumeration uses the non-mutating [`Simulation::schedulable_set`]
//!   view instead of cloning a probe.
//!
//! The reported violation is the first one in the canonical search
//! order: processes ascending, per process "no delivery" first and then
//! the deliveries in content order. (With reductions off and at most
//! one delivery candidate per step this coincides with the
//! lexicographically-least violating [`Choice`] script.) For a fixed
//! [`ExploreConfig`] the result never depends on the
//! thread count, the frontier depth, or the process's hash seed;
//! counters *do* legitimately differ across configs (dedup on/off, por
//! vs dpor) — reduction changes how many states exist, not which verdict
//! is reached.
//!
//! [`Sweep`]: crate::sweep::Sweep
//! [`StepReport::quiet`]: crate::StepReport::quiet

use crate::automaton::Automaton;
use crate::dpor::{self, SleepKey, SleepSet};
use crate::hb::HbState;
use crate::scheduler::Choice;
use crate::sim::Simulation;
use crate::sweep::Sweep;
use sih_model::{FailureDetector, ProcessId};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::mem;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Tuning knobs of an exploration. Construct with [`ExploreConfig::new`]
/// and refine with the builder methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum further steps from the root (tree depth bound).
    pub depth: usize,
    /// Per step, how many distinct pending messages are tried as the
    /// delivery (always including "no delivery"); `usize::MAX` tries
    /// every pending message.
    ///
    /// A finite cap samples the first `cap` messages of the **canonical
    /// content order** (sorted by envelope fingerprint, ties
    /// oldest-first) — a prefix the order-insensitive multiset
    /// fingerprint fully determines, so dedup stays sound at any cap.
    /// Sleep sets are cap-sound too: they key on content
    /// ([`crate::dpor::SleepKey`]), and a commuting sibling step never
    /// removes the sleeping message — hence **both reductions stay on
    /// under finite caps** (they were forced off before the canonical
    /// enumeration existed).
    pub max_deliveries: usize,
    /// Skip states whose canonical fingerprint was already explored
    /// under the same sleep context at equal or greater remaining depth.
    pub dedup: bool,
    /// Sleep-set partial-order reduction: skip the non-canonical order
    /// of commuting adjacent step pairs.
    pub por: bool,
    /// Source-DPOR: persistent sleep sets with happens-before race
    /// wake-ups (see [`crate::dpor`]). Supersedes `por` — when set, the
    /// depth-1 sleep sets of `por` are carried down the path and woken
    /// only by dependent steps, pruning strictly more.
    pub dpor: bool,
    /// Worker threads for the parallel frontier (`0` = one per core);
    /// only consulted by [`explore_par`], and never changes the result.
    pub threads: usize,
    /// Prefix depth expanded breadth-first into parallel subtree jobs;
    /// `0` lets [`explore_par`] auto-size the frontier to its worker
    /// count. Never changes the result — the shared fingerprint table
    /// makes every counter partition-independent.
    pub frontier_depth: usize,
}

impl ExploreConfig {
    /// Defaults: explore to `depth`, try every delivery, dedup and
    /// sleep-set reduction on, serial (no frontier).
    pub fn new(depth: usize) -> Self {
        ExploreConfig {
            depth,
            max_deliveries: usize::MAX,
            dedup: true,
            por: true,
            dpor: false,
            threads: 1,
            frontier_depth: 0,
        }
    }

    /// Sets the per-step delivery cap. Reductions stay on — the capped
    /// menu is a canonical content-order prefix the multiset
    /// fingerprint determines (see [`ExploreConfig::max_deliveries`]).
    #[must_use]
    pub fn max_deliveries(mut self, cap: usize) -> Self {
        self.max_deliveries = cap;
        self
    }

    /// Enables or disables fingerprint dedup.
    #[must_use]
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Enables or disables the partial-order reduction.
    #[must_use]
    pub fn por(mut self, on: bool) -> Self {
        self.por = on;
        self
    }

    /// Enables or disables source-DPOR (persistent sleep sets with
    /// happens-before race wake-ups).
    #[must_use]
    pub fn dpor(mut self, on: bool) -> Self {
        self.dpor = on;
        self
    }

    /// Sets the worker-thread count (`0` = one per core).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the parallel-frontier prefix depth (`0` = auto-size to the
    /// worker count).
    #[must_use]
    pub fn frontier_depth(mut self, k: usize) -> Self {
        self.frontier_depth = k;
        self
    }

    /// Whether any sleep-set machinery (depth-1 or persistent) is on.
    fn sleep_on(&self) -> bool {
        self.por || self.dpor
    }
}

/// Aggregate result of an exploration.
///
/// Derives `Eq` so determinism tests can assert the *entire* result —
/// counters and violation script — is identical across thread counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreResult {
    /// States visited (including the root, excluding deduped revisits).
    pub states: u64,
    /// Terminal states (all correct halted, or nobody schedulable).
    pub terminals: u64,
    /// States cut off by the depth bound.
    pub truncated: u64,
    /// Revisited states skipped by fingerprint dedup.
    pub deduped: u64,
    /// Child branches skipped because they were asleep (covered by an
    /// earlier branch).
    pub pruned: u64,
    /// Sleeping choices woken by a dependent (racing) step — nonzero
    /// only under [`ExploreConfig::dpor`].
    pub races: u64,
    /// Approximate payload size of the shared dedup table: entries ×
    /// `(key + value)` bytes (tree overhead of the shard maps is not
    /// counted).
    pub table_bytes: u64,
    /// First violation in canonical search order, if any: the choice
    /// script reaching it (from the exploration root) and the checker's
    /// message.
    pub violation: Option<(Vec<Choice>, String)>,
}

impl ExploreResult {
    const EMPTY: ExploreResult = ExploreResult {
        states: 0,
        terminals: 0,
        truncated: 0,
        deduped: 0,
        pruned: 0,
        races: 0,
        table_bytes: 0,
        violation: None,
    };

    /// Whether the exploration found no violation.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Adds `sub`'s counters into `self` (violations are handled by the
    /// drivers, never merged).
    fn absorb(&mut self, sub: &ExploreResult) {
        self.states += sub.states;
        self.terminals += sub.terminals;
        self.truncated += sub.truncated;
        self.deduped += sub.deduped;
        self.pruned += sub.pruned;
        self.races += sub.races;
    }
}

/// Number of shards in the shared fingerprint table — a power of two
/// comfortably above any realistic worker count, so two workers rarely
/// claim in the same shard at once.
const TABLE_SHARDS: usize = 64;

/// Bytes per table entry reported in [`ExploreResult::table_bytes`].
const TABLE_ENTRY_BYTES: u64 = (mem::size_of::<(u64, u64)>() + mem::size_of::<usize>()) as u64;

/// The shared dedup table: `(state fingerprint, sleep-context
/// fingerprint) → largest remaining depth already claimed`, sharded by
/// fingerprint high bits so concurrent claims rarely touch the same
/// lock.
///
/// `BTreeMap` per shard, not `HashMap`: iteration-order determinism and
/// no process-seeded hasher (DESIGN.md §6). The claim outcome is a pure
/// function of the key — equal state fingerprints imply equal `now`,
/// hence equal tree depth, hence equal remaining budget — so *which*
/// visit claims first never changes what gets explored, only who
/// explores it. That is the property that makes the shared table safe
/// to use from any number of workers without a merge step.
struct SharedTable {
    shards: Vec<Mutex<BTreeMap<(u64, u64), usize>>>,
}

impl SharedTable {
    fn new() -> Self {
        SharedTable { shards: (0..TABLE_SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect() }
    }

    fn shard(&self, fp: u64) -> &Mutex<BTreeMap<(u64, u64), usize>> {
        &self.shards[(fp >> 58) as usize]
    }

    /// Claims `(fp, ctx)` at `remaining`: returns `true` when the caller
    /// should expand the node (first visit, or a revisit with a strictly
    /// larger remaining budget), `false` when it is a dedup skip.
    fn claim(&self, fp: u64, ctx: u64, remaining: usize) -> bool {
        let mut map = self
            .shard(fp)
            .lock()
            .expect("invariant: table shards are never poisoned (worker panics propagate)");
        match map.entry((fp, ctx)) {
            Entry::Occupied(mut e) => {
                if *e.get() >= remaining {
                    false
                } else {
                    *e.get_mut() = remaining;
                    true
                }
            }
            Entry::Vacant(v) => {
                v.insert(remaining);
                true
            }
        }
    }

    /// Upgrades a claimed entry to "dead end": its (empty) future is
    /// covered at any revisit depth.
    fn mark_dead_end(&self, fp: u64, ctx: u64) {
        let mut map = self
            .shard(fp)
            .lock()
            .expect("invariant: table shards are never poisoned (worker panics propagate)");
        map.insert((fp, ctx), usize::MAX);
    }

    fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("invariant: table shards are never poisoned (worker panics propagate)")
                    .len() as u64
            })
            .sum()
    }

    #[cfg(test)]
    fn get(&self, fp: u64, ctx: u64) -> Option<usize> {
        self.shard(fp)
            .lock()
            .expect("invariant: table shards are never poisoned (worker panics propagate)")
            .get(&(fp, ctx))
            .copied()
    }
}

/// Exhaustively explores all schedules of `sim` up to `depth` further
/// steps, calling `check` on every reached state; returns on the first
/// violation.
///
/// Thin wrapper over [`explore_with`] with the [`ExploreConfig::new`]
/// defaults — reductions **on**, serial. Pass a config with
/// `.dedup(false).por(false)` for the unreduced enumeration.
pub fn explore<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    depth: usize,
    max_branch_deliveries: usize,
    check: &mut F,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    explore_with(sim, fd, &ExploreConfig::new(depth).max_deliveries(max_branch_deliveries), check)
}

/// Explores under an explicit [`ExploreConfig`], single-threaded.
///
/// Runs the canonical depth-first search; `cfg.threads` and
/// `cfg.frontier_depth` are ignored here, and thanks to the shared
/// fingerprint table the result is bitwise identical to [`explore_par`]
/// with the same config at any thread count or frontier depth.
pub fn explore_with<A, D, F>(
    sim: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    check: &mut F,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let table = SharedTable::new();
    let mut dfs = Dfs::new(fd, cfg, &table, None, check);
    let hb = cfg.dpor.then(|| HbState::new(sim.n()));
    let sleep = SleepSet::new();
    dfs.node(sim, hb.as_ref(), cfg.depth, &sleep);
    let mut result = dfs.result;
    result.table_bytes = table.entries() * TABLE_ENTRY_BYTES;
    result
}

/// Explores with the parallel frontier: a breadth-first prefix of the
/// tree is expanded into subtree jobs (exactly
/// `cfg.frontier_depth` levels, or auto-sized to the worker count when
/// it is `0`) that fan out across [`Sweep::new`]`(cfg.threads)`,
/// work-stealing off its atomic cursor. All workers share one sharded
/// fingerprint table, so the counters are sums of per-key contributions
/// and the merged result is bitwise identical to [`explore_with`] for
/// any `cfg.threads` and any frontier depth.
///
/// `make_check` is called once per worker to build its checker closure;
/// a checker must be a pure function of the checker-visible state (see
/// [`Simulation::fingerprint`]), which is what makes the fan-out sound.
/// When any worker finds a violation the parallel counters are
/// discarded and the exploration re-runs serially, so the reported
/// violation script and every counter are exactly [`explore_with`]'s —
/// not "whatever finished before the abort". (Violating explorations
/// stop at the first violation, so the serial re-run is cheap relative
/// to a full sweep of the state space.)
pub fn explore_par<A, D, W, C>(
    sim: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    make_check: W,
) -> ExploreResult
where
    A: Automaton + Clone + fmt::Debug + Send,
    A::Msg: Send,
    D: FailureDetector + ?Sized + Sync,
    W: Fn() -> C + Sync,
    C: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let table = SharedTable::new();
    let abort = AtomicBool::new(false);

    // Phase 1: expand the frontier breadth-first on this thread, using
    // the same per-node gate (claim, check, classify) as the DFS so the
    // prefix contributes to the shared table and counters identically.
    let mut root_check = make_check();
    let mut partial;
    let jobs;
    let used_levels;
    {
        let mut bfs = Dfs::new(fd, cfg, &table, Some(&abort), &mut root_check);
        let (lvls, lvl_jobs) = expand_frontier(&mut bfs, sim, cfg);
        partial = bfs.result;
        jobs = lvl_jobs;
        used_levels = lvls;
    }
    if partial.violation.is_some() {
        // Canonical script + counters come from the serial driver.
        return explore_with(sim, fd, cfg, &mut make_check());
    }
    let remaining = cfg.depth - used_levels;

    // Phase 2: fan the subtree jobs across the sweep pool. Each worker
    // keeps one Dfs (checker, pools) for all the jobs it steals.
    let results = Sweep::new(cfg.threads).run(jobs, || {
        let mut dfs = Dfs::new(fd, cfg, &table, Some(&abort), make_check());
        move |_idx: usize, job: Job<A>| {
            dfs.result = ExploreResult::EMPTY;
            dfs.node(&job.sim, job.hb.as_ref(), remaining, &job.sleep);
            mem::replace(&mut dfs.result, ExploreResult::EMPTY)
        }
    });

    if results.iter().any(|r| r.violation.is_some()) {
        return explore_with(sim, fd, cfg, &mut make_check());
    }
    for sub in &results {
        partial.absorb(sub);
    }
    partial.table_bytes = table.entries() * TABLE_ENTRY_BYTES;
    partial
}

/// A frontier subtree job: the state to explore plus its inherited
/// happens-before shadow and sleep context.
struct Job<A: Automaton> {
    sim: Simulation<A>,
    hb: Option<HbState>,
    sleep: SleepSet,
}

/// Expands the root breadth-first through the shared-table gate,
/// returning `(levels expanded, jobs)`. With `cfg.frontier_depth > 0`
/// exactly that many levels are expanded; with `0` the frontier grows
/// until there are enough jobs to keep the worker pool busy (at least
/// [`JOBS_PER_WORKER`] per worker), the level empties, or the depth
/// budget runs out.
fn expand_frontier<A, D, F>(
    bfs: &mut Dfs<'_, A, D, F>,
    sim: &Simulation<A>,
    cfg: &ExploreConfig,
) -> (usize, Vec<Job<A>>)
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    let target = if cfg.frontier_depth > 0 {
        0 // explicit depth: the level count is the only stop condition
    } else {
        JOBS_PER_WORKER * Sweep::new(cfg.threads).effective_threads(usize::MAX)
    };
    let k = if cfg.frontier_depth > 0 { cfg.frontier_depth.min(cfg.depth) } else { cfg.depth };

    let mut level = vec![Job {
        sim: sim.clone(),
        hb: cfg.dpor.then(|| HbState::new(sim.n())),
        sleep: SleepSet::new(),
    }];
    let mut used = 0;
    while used < k {
        if cfg.frontier_depth == 0 && (level.len() >= target || level.is_empty()) {
            break;
        }
        let remaining = cfg.depth - used;
        let mut next: Vec<Job<A>> = Vec::new();
        for job in level {
            if bfs.result.violation.is_some() {
                return (used, Vec::new());
            }
            if let Gate::Expand = bfs.gate(&job.sim, remaining, &job.sleep) {
                let mut kids = Vec::new();
                bfs.expand_into(&job.sim, job.hb.as_ref(), &job.sleep, &mut kids);
                next.extend(kids.into_iter().map(|c| Job { sim: c.sim, hb: c.hb, sleep: c.sleep }));
            }
        }
        level = next;
        used += 1;
    }
    (used, level)
}

/// Frontier auto-sizing: jobs per worker to aim for, so the
/// work-stealing cursor can rebalance uneven subtrees.
const JOBS_PER_WORKER: usize = 8;

/// What the per-node gate (dedup claim → check → classify) decided.
enum Gate {
    /// Skipped: already claimed under this context at this depth.
    Deduped,
    /// Checked and found violating (recorded in the result).
    Violation,
    /// Checked; a terminal state (all correct halted / none schedulable).
    Terminal,
    /// Checked; out of depth budget.
    Truncated,
    /// Checked; expand the children.
    Expand,
}

/// A materialized child edge: the choice taken and the child's state,
/// happens-before shadow and sleep set (all drawn from the owning
/// [`Dfs`]'s pools; return them with [`Dfs::recycle`]).
struct ChildEdge<A: Automaton> {
    choice: Choice,
    sim: Simulation<A>,
    hb: Option<HbState>,
    sleep: SleepSet,
}

/// The reduced depth-first search engine. One per worker; the dedup
/// table is shared, everything else (pools, path, counters) is local.
struct Dfs<'a, A: Automaton, D: ?Sized, F> {
    fd: &'a D,
    cfg: &'a ExploreConfig,
    check: F,
    table: &'a SharedTable,
    /// Cooperative stop flag for the parallel driver: set on the first
    /// violation, checked at node entry. `None` in the serial driver
    /// (whose early exit is the canonical one).
    abort: Option<&'a AtomicBool>,
    /// Free lists recycled across tree edges.
    sim_pool: Vec<Simulation<A>>,
    hb_pool: Vec<HbState>,
    sleep_pool: Vec<SleepSet>,
    edge_pool: Vec<Vec<ChildEdge<A>>>,
    /// Scratch: per-destination pending counts before / queue growth
    /// across the current step (dpor only).
    pending_before: Vec<usize>,
    grew: Vec<usize>,
    /// Scratch: one process's delivery menu as `(envelope fp, alive
    /// index)` pairs, sorted into canonical content order per expansion.
    menu: Vec<(u64, usize)>,
    path: Vec<Choice>,
    result: ExploreResult,
}

impl<'a, A, D, F> Dfs<'a, A, D, F>
where
    A: Automaton + Clone + fmt::Debug,
    D: FailureDetector + ?Sized,
    F: FnMut(&Simulation<A>) -> Result<(), String>,
{
    fn new(
        fd: &'a D,
        cfg: &'a ExploreConfig,
        table: &'a SharedTable,
        abort: Option<&'a AtomicBool>,
        check: F,
    ) -> Self {
        Dfs {
            fd,
            cfg,
            check,
            table,
            abort,
            sim_pool: Vec::new(),
            hb_pool: Vec::new(),
            sleep_pool: Vec::new(),
            edge_pool: Vec::new(),
            pending_before: Vec::new(),
            grew: Vec::new(),
            menu: Vec::new(),
            path: Vec::new(),
            result: ExploreResult::EMPTY,
        }
    }

    fn aborted(&self) -> bool {
        self.abort.is_some_and(|a| a.load(Ordering::Relaxed))
    }

    /// The per-node gate: dedup claim, state count, property check,
    /// terminal/truncation classification. Exactly one gate runs per
    /// visit, in both the DFS and the frontier BFS, which is what keeps
    /// their counters interchangeable.
    fn gate(&mut self, sim: &Simulation<A>, remaining: usize, sleep: &SleepSet) -> Gate {
        let claimed = if self.cfg.dedup {
            let fp = sim.fingerprint();
            let ctx = sleep.fingerprint();
            if !self.table.claim(fp, ctx, remaining) {
                self.result.deduped += 1;
                return Gate::Deduped;
            }
            Some((fp, ctx))
        } else {
            None
        };

        self.result.states += 1;
        if let Err(msg) = (self.check)(sim) {
            self.result.violation = Some((self.path.clone(), msg));
            if let Some(abort) = self.abort {
                abort.store(true, Ordering::Relaxed);
            }
            return Gate::Violation;
        }

        let dead_end = sim.all_correct_halted() || sim.schedulable_set().is_empty();
        if dead_end {
            if let Some((fp, ctx)) = claimed {
                // A dead end's (empty) future is covered at any depth.
                self.table.mark_dead_end(fp, ctx);
            }
            self.result.terminals += 1;
            return Gate::Terminal;
        }
        if remaining == 0 {
            self.result.truncated += 1;
            return Gate::Truncated;
        }
        Gate::Expand
    }

    /// Visits one state: gate, then expand and recurse in canonical
    /// child order. `sleep` is the sleep context inherited along the
    /// path (empty unless `por`/`dpor`); `hb` is the happens-before
    /// shadow (`Some` iff `cfg.dpor`).
    fn node(
        &mut self,
        sim: &Simulation<A>,
        hb: Option<&HbState>,
        remaining: usize,
        sleep: &SleepSet,
    ) {
        if self.aborted() {
            return;
        }
        if !matches!(self.gate(sim, remaining, sleep), Gate::Expand) {
            return;
        }
        let mut kids = self.edge_pool.pop().unwrap_or_default();
        self.expand_into(sim, hb, sleep, &mut kids);
        for kid in kids.drain(..) {
            if self.result.violation.is_none() && !self.aborted() {
                self.path.push(kid.choice);
                self.node(&kid.sim, kid.hb.as_ref(), remaining - 1, &kid.sleep);
                self.path.pop();
            }
            self.recycle(kid);
        }
        self.edge_pool.push(kids);
    }

    /// Returns a child's buffers to the free lists.
    fn recycle(&mut self, kid: ChildEdge<A>) {
        self.sim_pool.push(kid.sim);
        if let Some(hb) = kid.hb {
            self.hb_pool.push(hb);
        }
        self.sleep_pool.push(kid.sleep);
    }

    /// Materializes every child of `sim` not asleep under `sleep`, in
    /// canonical order (processes ascending; per process the no-delivery
    /// step, then deliveries sorted by envelope fingerprint), computing
    /// each child's sleep set (and happens-before shadow under dpor).
    /// Updates the `pruned`/`races` counters.
    fn expand_into(
        &mut self,
        sim: &Simulation<A>,
        hb: Option<&HbState>,
        sleep: &SleepSet,
        out: &mut Vec<ChildEdge<A>>,
    ) {
        let schedulable = sim.schedulable_set();
        let t1 = sim.now().next();
        let t2 = t1.next();
        let sleep_on = self.cfg.sleep_on();
        let n = sim.n();
        if self.cfg.dpor {
            self.pending_before.clear();
            for i in 0..n {
                self.pending_before.push(sim.network().pending_count(ProcessId(i as u32)));
            }
        }
        // Earlier siblings at this node, keyed by content, with their
        // quietness — the raw material of the children's sleep sets.
        let mut earlier: Vec<(SleepKey, bool)> = Vec::new();
        let mut menu = mem::take(&mut self.menu);
        for p in schedulable.iter() {
            // Canonical content-ordered delivery menu: the pending
            // messages sorted by envelope fingerprint, ties
            // oldest-first. A finite cap keeps a prefix of *this* order,
            // so the menu — and every sleep key derived from it — is a
            // pure function of the queue's content multiset, never of
            // arrival order. The concrete alive index still rides along
            // for [`Simulation::step`] and the replayable script.
            menu.clear();
            menu.extend(sim.network().pending_envelope_fps(p).enumerate().map(|(i, fp)| (fp, i)));
            menu.sort_unstable();
            let tried = menu.len().min(self.cfg.max_deliveries);
            for d in 0..=tried {
                let (key, choice) = match d.checked_sub(1) {
                    None => (SleepKey { p, deliver: None }, Choice { p, deliver: None }),
                    Some(k) => {
                        let (efp, idx) = menu[k];
                        (SleepKey { p, deliver: Some(efp) }, Choice { p, deliver: Some(idx) })
                    }
                };
                if sleep_on && sleep.contains(key) {
                    self.result.pruned += 1;
                    continue;
                }
                let mut child = match self.sim_pool.pop() {
                    Some(mut buf) => {
                        buf.clone_from(sim);
                        buf
                    }
                    None => sim.clone(),
                };
                let report = child.step(choice, self.fd);

                // Whether this step commutes with quiet siblings: quiet
                // itself, its process survives the swap window, and its
                // detector output is stable across the two step times.
                let commutes = report.quiet()
                    && sim.pattern().is_alive(p, t2)
                    && self.fd.output(p, t1) == self.fd.output(p, t2);

                // Happens-before shadow of the child (dpor only): apply
                // the delivery and the observed queue growth.
                let child_hb = hb.map(|parent| {
                    self.grew.clear();
                    for i in 0..n {
                        let pid = ProcessId(i as u32);
                        let after = child.network().pending_count(pid);
                        let before = self.pending_before[i];
                        let delivered = usize::from(choice.deliver.is_some() && pid == p);
                        self.grew.push(after + delivered - before);
                    }
                    let mut h = match self.hb_pool.pop() {
                        Some(mut buf) => {
                            buf.clone_from(parent);
                            buf
                        }
                        None => parent.clone(),
                    };
                    h.apply(p, choice.deliver, &self.grew);
                    h
                });

                // The child's sleep set. Depth-1 part (por and dpor):
                // every *earlier* quiet sibling of a different process,
                // when both steps' detector outputs are stable across
                // {t1, t2} and both processes survive — then
                // `choice · sibling` reaches a state check-equivalent to
                // `sibling · choice`, whose subtree the earlier branch
                // already explored at the same remaining depth (see
                // DESIGN.md). Persistent part (dpor only): inherited
                // sleepers are carried down while the executed step
                // commutes with them, and woken by program order or a
                // happens-before race ([`dpor::wake_races`]).
                let mut child_sleep = self.sleep_pool.pop().unwrap_or_default();
                child_sleep.clear();
                if self.cfg.dpor && commutes && !sleep.is_empty() {
                    child_sleep.copy_from(sleep);
                    // Sleepers whose own commutation window broke (fd
                    // drift or crash) are dropped, not raced.
                    child_sleep.retain(|s| {
                        sim.pattern().is_alive(s.p, t2)
                            && self.fd.output(s.p, t1) == self.fd.output(s.p, t2)
                    });
                    let woken = dpor::wake_races(
                        &mut child_sleep,
                        child_hb
                            .as_ref()
                            .expect("invariant: dpor mode always carries an hb shadow"),
                        p,
                        &self.grew,
                    );
                    self.result.races += woken;
                }
                if sleep_on && commutes {
                    for &(prev, prev_quiet) in &earlier {
                        if prev_quiet
                            && prev.p != p
                            && sim.pattern().is_alive(prev.p, t2)
                            && self.fd.output(prev.p, t1) == self.fd.output(prev.p, t2)
                        {
                            child_sleep.insert(prev);
                        }
                    }
                }

                out.push(ChildEdge { choice, sim: child, hb: child_hb, sleep: child_sleep });
                earlier.push((key, report.quiet()));
            }
        }
        self.menu = menu;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Effects, StepInput};
    use sih_model::{FailurePattern, NoDetector, ProcessId, Value};

    /// Decides its own id on its second step.
    #[derive(Clone, Debug, Default)]
    struct TwoStepDecider {
        steps: u32,
        done: bool,
    }
    impl Automaton for TwoStepDecider {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            self.steps += 1;
            if self.steps == 2 && !self.done {
                self.done = true;
                eff.decide(Value::of_process(input.me));
                eff.halt();
            }
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    fn unreduced(depth: usize) -> ExploreConfig {
        ExploreConfig::new(depth).dedup(false).por(false)
    }

    #[test]
    fn explores_all_interleavings_of_two_processes() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut no_check = |_: &Simulation<TwoStepDecider>| Ok(());
        let res = explore_with(&sim, &NoDetector, &unreduced(4), &mut no_check);
        assert!(res.ok());
        // Each process needs exactly 2 steps; all interleavings of the
        // 4-step runs terminate: C(4,2) = 6 terminal orderings.
        assert_eq!(res.terminals, 6);
        assert!(res.states > 6);
        assert_eq!(res.truncated, 0);
        assert_eq!(res.deduped, 0);
        assert_eq!(res.pruned, 0);
        assert_eq!(res.races, 0);
        assert_eq!(res.table_bytes, 0);
    }

    #[test]
    fn reduction_shrinks_the_tree_and_preserves_the_verdict() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut c1 = |_: &Simulation<TwoStepDecider>| Ok(());
        let full = explore_with(&sim, &NoDetector, &unreduced(4), &mut c1);
        let mut c2 = |_: &Simulation<TwoStepDecider>| Ok(());
        let reduced = explore_with(&sim, &NoDetector, &ExploreConfig::new(4), &mut c2);
        assert_eq!(full.ok(), reduced.ok());
        assert!(reduced.states < full.states, "{} !< {}", reduced.states, full.states);
        assert!(reduced.deduped + reduced.pruned > 0);
        assert!(reduced.table_bytes > 0);
        // Decision *times* are checker-visible, so distinct-time terminals
        // must stay distinct: dedup only merges exact projections.
        assert!(reduced.terminals >= 4);
    }

    #[test]
    fn depth_bound_truncates() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut no_check = |_: &Simulation<TwoStepDecider>| Ok(());
        let res = explore(&sim, &NoDetector, 1, usize::MAX, &mut no_check);
        assert!(res.truncated > 0);
        assert_eq!(res.terminals, 0);
    }

    /// Three messages to the other process on the first step.
    #[derive(Clone, Debug, Default)]
    struct Sender {
        sent: bool,
    }
    impl Automaton for Sender {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            if !self.sent {
                self.sent = true;
                let other = ProcessId(1 - input.me.0);
                eff.send(other, 1);
                eff.send(other, 2);
                eff.send(other, 3);
            }
        }
    }

    #[test]
    fn delivery_cap_limits_branching() {
        // With messages pending, capping tried deliveries shrinks the
        // tree but still visits the no-delivery branch.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut no_check = |_: &Simulation<Sender>| Ok(());
        let uncapped = explore_with(&sim, &NoDetector, &unreduced(3), &mut no_check);
        let mut no_check2 = |_: &Simulation<Sender>| Ok(());
        let capped =
            explore_with(&sim, &NoDetector, &unreduced(3).max_deliveries(1), &mut no_check2);
        assert!(capped.states < uncapped.states);
        assert!(capped.states > 1);
    }

    #[test]
    fn finite_delivery_cap_keeps_reductions_on_and_sound() {
        // Under a finite cap the reductions used to be forced off; with
        // the canonical content-ordered menu they now run — and must
        // agree with both the capped and the *uncapped* unreduced
        // enumeration on the verdict.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut c1 = |_: &Simulation<Sender>| Ok(());
        let reduced_capped =
            explore_with(&sim, &NoDetector, &ExploreConfig::new(4).max_deliveries(1), &mut c1);
        let mut c2 = |_: &Simulation<Sender>| Ok(());
        let plain_capped =
            explore_with(&sim, &NoDetector, &unreduced(4).max_deliveries(1), &mut c2);
        let mut c3 = |_: &Simulation<Sender>| Ok(());
        let plain_uncapped = explore_with(&sim, &NoDetector, &unreduced(4), &mut c3);
        assert_eq!(reduced_capped.ok(), plain_capped.ok());
        assert_eq!(reduced_capped.ok(), plain_uncapped.ok());
        // The reductions really ran and really reduced.
        assert!(reduced_capped.deduped + reduced_capped.pruned > 0);
        assert!(reduced_capped.table_bytes > 0);
        assert!(reduced_capped.states < plain_capped.states);
        // And the parallel driver agrees bitwise with the serial one.
        let par = explore_par(
            &sim,
            &NoDetector,
            &ExploreConfig::new(4).max_deliveries(1).frontier_depth(2).threads(2),
            || |_: &Simulation<Sender>| Ok(()),
        );
        assert_eq!(par, reduced_capped);
    }

    #[test]
    fn por_prunes_commuting_quiet_steps() {
        // All Sender steps are quiet (sends only) and NoDetector is
        // trivially stable, so adjacent steps of different processes
        // commute and the sleep sets must fire.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut c1 = |_: &Simulation<Sender>| Ok(());
        let por_only =
            explore_with(&sim, &NoDetector, &ExploreConfig::new(4).dedup(false).por(true), &mut c1);
        let mut c2 = |_: &Simulation<Sender>| Ok(());
        let full = explore_with(&sim, &NoDetector, &unreduced(4), &mut c2);
        assert!(por_only.pruned > 0);
        assert!(por_only.states < full.states);
        assert_eq!(por_only.ok(), full.ok());
    }

    #[test]
    fn dpor_prunes_at_least_as_much_as_sleep_sets() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let mut c1 = |_: &Simulation<Sender>| Ok(());
        let full = explore_with(&sim, &NoDetector, &unreduced(5), &mut c1);
        let mut c2 = |_: &Simulation<Sender>| Ok(());
        let por = explore_with(&sim, &NoDetector, &ExploreConfig::new(5), &mut c2);
        let mut c3 = |_: &Simulation<Sender>| Ok(());
        let dpor = explore_with(&sim, &NoDetector, &ExploreConfig::new(5).dpor(true), &mut c3);
        assert_eq!(dpor.ok(), full.ok());
        assert!(dpor.states <= por.states, "dpor {} !<= por {}", dpor.states, por.states);
        assert!(dpor.states < full.states);
        // Persistent sleep sets carried past a send into the sleeper's
        // queue must record the race that woke them.
        assert!(dpor.races > 0, "expected happens-before race wake-ups");
    }

    #[test]
    fn dpor_terminals_match_the_unreduced_enumeration() {
        // Every Mazurkiewicz trace must still be represented: the
        // deciders' four distinct decision-time terminals all survive
        // dpor (same assertion the por reduction honors).
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut c = |_: &Simulation<TwoStepDecider>| Ok(());
        let dpor = explore_with(&sim, &NoDetector, &ExploreConfig::new(4).dpor(true), &mut c);
        assert!(dpor.ok());
        assert!(dpor.terminals >= 4);
    }

    #[test]
    fn violation_reports_reaching_script() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        // "Violation": p1 decided.
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let res = explore(&sim, &NoDetector, 6, usize::MAX, &mut check);
        let (script, msg) = res.violation.expect("must find the violation");
        assert_eq!(msg, "p1 decided");
        // The reaching script must contain exactly two steps of p1 at its
        // end-state (p1 decides on its second step).
        let p1_steps = script.iter().filter(|c| c.p == ProcessId(1)).count();
        assert_eq!(p1_steps, 2);
    }

    #[test]
    fn unreduced_violation_script_is_lexicographically_least() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let res = explore_with(&sim, &NoDetector, &unreduced(6), &mut check);
        let (script, _) = res.violation.clone().expect("must find the violation");
        // Unreduced DFS visits scripts in lexicographic order (ascending
        // siblings, prefixes first), so the first violation found is the
        // lex-least violating script: p0 halts after two steps, making
        // [p0, p0, p1, p1] the smallest schedule whose end state has two
        // p1 steps.
        let expected: Vec<Choice> =
            [0, 0, 1, 1].into_iter().map(|p| Choice { p: ProcessId(p), deliver: None }).collect();
        assert_eq!(script, expected);
        // The parallel driver re-runs serially on violation, so it must
        // settle on the same script (and identical counters).
        let par =
            explore_par(&sim, &NoDetector, &unreduced(6).frontier_depth(2).threads(2), || {
                |s: &Simulation<TwoStepDecider>| {
                    if s.trace().decision_of(ProcessId(1)).is_some() {
                        Err("p1 decided".to_owned())
                    } else {
                        Ok(())
                    }
                }
            });
        assert_eq!(par.violation.as_ref().map(|(s, _)| s.as_slice()), Some(expected.as_slice()));
        assert_eq!(par, res);
    }

    #[test]
    fn frontier_and_thread_count_leave_the_result_identical() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let make_check = || |_: &Simulation<Sender>| Ok(());
        for cfg in [
            ExploreConfig::new(5),
            ExploreConfig::new(5).dpor(true),
            unreduced(5),
            ExploreConfig::new(5).max_deliveries(1),
        ] {
            let mut serial_check = make_check();
            let serial = explore_with(&sim, &NoDetector, &cfg, &mut serial_check);
            // Explicit frontier depths and the auto-sized frontier
            // (frontier_depth 0) must all match the serial counters.
            for frontier in [0, 2, 3] {
                for threads in [1, 2, 8] {
                    let out = explore_par(
                        &sim,
                        &NoDetector,
                        &cfg.frontier_depth(frontier).threads(threads),
                        make_check,
                    );
                    assert_eq!(out, serial, "cfg {cfg:?} frontier {frontier} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn old_wrapper_matches_default_config() {
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let mut c1 = |_: &Simulation<TwoStepDecider>| Ok(());
        let wrapped = explore(&sim, &NoDetector, 4, usize::MAX, &mut c1);
        let mut c2 = |_: &Simulation<TwoStepDecider>| Ok(());
        let configured = explore_with(&sim, &NoDetector, &ExploreConfig::new(4), &mut c2);
        assert_eq!(wrapped, configured);
    }

    #[test]
    fn dedup_table_reexplores_revisits_with_more_remaining_depth() {
        // In a live run every revisit carries equal remaining depth (the
        // fingerprint hashes `now` and every step advances it), so the
        // table's `seen >= remaining` branch is driven directly here:
        // seed the table as if the root had been explored with a budget
        // too small to reach the violation, then visit it with a larger
        // one — the visit must re-explore, find the deep violation, and
        // raise the recorded budget.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![TwoStepDecider::default(); 2], pattern);
        let fp = sim.fingerprint();
        let ctx = SleepSet::new().fingerprint();
        // "p1 decided" needs two p1 steps — unreachable within 1 step.
        let mut check = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let cfg = ExploreConfig::new(3).por(false);
        let table = SharedTable::new();
        assert!(table.claim(fp, ctx, 1)); // seed: explored at budget 1
        let mut dfs = Dfs::new(&NoDetector, &cfg, &table, None, &mut check);
        dfs.node(&sim, None, 3, &SleepSet::new());
        assert_eq!(dfs.result.deduped, 0, "larger remaining budget must re-explore");
        let (script, _) = dfs.result.violation.expect("violation beyond the seeded budget");
        assert_eq!(script.iter().filter(|c| c.p == ProcessId(1)).count(), 2);
        assert_eq!(table.get(fp, ctx), Some(3), "re-exploring must raise the recorded budget");

        // A revisit at equal (or smaller) remaining budget is skipped.
        let mut check2 = |s: &Simulation<TwoStepDecider>| {
            if s.trace().decision_of(ProcessId(1)).is_some() {
                Err("p1 decided".to_owned())
            } else {
                Ok(())
            }
        };
        let table2 = SharedTable::new();
        assert!(table2.claim(fp, ctx, 3));
        let mut dfs2 = Dfs::new(&NoDetector, &cfg, &table2, None, &mut check2);
        dfs2.node(&sim, None, 3, &SleepSet::new());
        assert_eq!(dfs2.result.deduped, 1);
        assert_eq!(dfs2.result.states, 0);
        assert_eq!(dfs2.result.violation, None);
    }

    #[test]
    fn dedup_respects_remaining_depth() {
        // End-to-end cross-check of the same table logic the unit test
        // above drives directly: reduced and unreduced exploration agree
        // on the verdict at every depth.
        let pattern = FailurePattern::all_correct(2);
        for depth in 1..=5 {
            let sim = Simulation::new(vec![Sender::default(); 2], pattern.clone());
            let mut c1 = |_: &Simulation<Sender>| Ok(());
            let full = explore_with(&sim, &NoDetector, &unreduced(depth), &mut c1);
            let mut c2 = |_: &Simulation<Sender>| Ok(());
            let red = explore_with(&sim, &NoDetector, &ExploreConfig::new(depth), &mut c2);
            let mut c3 = |_: &Simulation<Sender>| Ok(());
            let dp =
                explore_with(&sim, &NoDetector, &ExploreConfig::new(depth).dpor(true), &mut c3);
            assert_eq!(full.ok(), red.ok(), "depth {depth}");
            assert_eq!(full.ok(), dp.ok(), "depth {depth}");
            assert!(red.states <= full.states, "depth {depth}");
            assert!(dp.states <= red.states, "depth {depth}");
        }
    }

    #[test]
    fn sleep_context_splits_dedup_keys() {
        // Two visits of one state under different sleep contexts must
        // not merge: the context with the larger sleep set explores a
        // subset, and merging would let it shadow schedules only the
        // other context covers.
        let pattern = FailurePattern::all_correct(2);
        let sim = Simulation::new(vec![Sender::default(); 2], pattern);
        let fp = sim.fingerprint();
        let mut ctx_sleep = SleepSet::new();
        ctx_sleep.insert(SleepKey { p: ProcessId(1), deliver: None });
        let table = SharedTable::new();
        assert!(table.claim(fp, ctx_sleep.fingerprint(), 3));
        // Same state, empty context: a different key, so it claims too.
        assert!(table.claim(fp, SleepSet::new().fingerprint(), 3));
        // Same state, same context: dedup.
        assert!(!table.claim(fp, ctx_sleep.fingerprint(), 3));
    }
}
