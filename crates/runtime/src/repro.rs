//! Counterexample capture, shrinking, and replay.
//!
//! A failing run — a `check_*` rejection, an explorer violation, or an
//! engine panic — is only useful if it can be handed to a developer as an
//! artifact. This module defines that artifact: a [`Schedule`] bundles
//! everything the engine needs to reproduce a run bit-identically (the
//! exact [`Choice`] sequence, the crash pattern, the link-fault plan, the
//! detector seed and the workload parameters), serialized in a versioned,
//! diff-friendly text format so minimized schedules can live in a
//! committed corpus (`tests/corpus/`).
//!
//! The companion [`shrink_schedule`] is a delta-debugging minimizer: it
//! repeatedly proposes structurally smaller schedules (dropping choices
//! ddmin-style, removing or shortening fault windows, merging crash
//! windows into crash-from-start, reducing `n`) and keeps a candidate only
//! when a caller-supplied evaluator confirms the *same* checker verdict
//! still reproduces. The shrinker is serial and purely deterministic: its
//! output depends only on the input schedule and the evaluator, never on
//! thread count or wall-clock.
//!
//! # Format (version 1)
//!
//! ```text
//! sih-schedule v1
//! checker: fig2-weak-sigma
//! n: 3
//! k: 2
//! seed: 7
//! max-steps: 40
//! verdict: violation:agreement
//! crash-from-start: p2
//! crash: p1 @ 10
//! link: drop p0->p1 0%1 @[0, 200)
//! link: dup p2->p0 1%3 @[5, inf)
//! choice: p0 .
//! choice: p1 0
//! ```
//!
//! Blank lines and `#` comments are ignored. `choice: pI .` is a step of
//! `pI` receiving the null message; `choice: pI 4` delivers the message at
//! index 4 of `pI`'s arrival-ordered pending queue. The `verdict` is a
//! stable property-level token (e.g. `violation:agreement`, `panic`), not
//! a detail string, so it survives shrinking unchanged.
//!
//! # Format (version 2)
//!
//! Version 2 extends v1 with the Byzantine adversary environment — a
//! mutation plan, an optional scripted protocol attack, and the armor
//! rung the honest processes ran with:
//!
//! ```text
//! sih-schedule v2
//! checker: fig2-byz-perturb
//! n: 3
//! k: 2
//! seed: 7
//! max-steps: 40
//! verdict: violation:agreement
//! armor: 1
//! adversary: perturb p0->p1 0%1 @[0, 40) x=9
//! adversary: forge-sender p2->p0 1%3 @[5, inf) x=1
//! attack: equivocate x=3
//! choice: p0 .
//! choice: p1 0
//! ```
//!
//! Both versions parse; [`Schedule::to_text`] emits v1 whenever every
//! adversary field is at its default (honest plan, no attack, no armor),
//! so pre-existing corpus files round-trip byte-identically.

use crate::scheduler::Choice;
use crate::{Automaton, Simulation};
use sih_model::{
    AdversaryPlan, Armor, AttackKind, AttackSpec, FailurePattern, LinkFault, LinkFaultPlan,
    LinkFaultWindow, MutationKind, MutationWindow, ProcessId, Time,
};
use std::fmt;

/// The schedule format version this build writes when any adversary field
/// is non-default (it reads both v1 and v2).
pub const SCHEDULE_VERSION: u32 = 2;

/// A self-contained, replayable record of one run: workload identity and
/// parameters, the full fault environment, and the exact choice sequence.
///
/// `checker` names a registered workload (the lab crate owns the registry
/// mapping names to automata + detector + checker); `k` is a free workload
/// parameter (the `k` of `k`-set agreement; `1` where unused). `verdict`
/// is the property-level outcome the schedule witnesses — replaying must
/// reproduce it exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Registered checker/workload name (e.g. `fig2-weak-sigma`).
    pub checker: String,
    /// Number of processes.
    pub n: usize,
    /// Workload parameter (the `k` of `k`-set agreement; `1` if unused).
    pub k: usize,
    /// Detector / scheduler seed the run was recorded under.
    pub seed: u64,
    /// Step bound of the recorded run.
    pub max_steps: u64,
    /// Crash pattern of the run.
    pub pattern: FailurePattern,
    /// Link-fault plan of the run ([`LinkFaultPlan::reliable`] if none).
    pub faults: LinkFaultPlan,
    /// Mutation-adversary plan of the run ([`AdversaryPlan::honest`] if
    /// none was installed).
    pub adversary: AdversaryPlan,
    /// Scripted protocol attack the workload ran with, if any.
    pub attack: Option<AttackSpec>,
    /// Armor rung the honest processes ran with.
    pub armor: Armor,
    /// The executed choice sequence, step by step.
    pub choices: Vec<Choice>,
    /// Property-level verdict token the schedule reproduces.
    pub verdict: String,
}

/// Why a schedule failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The first line is not a `sih-schedule v<N>` header.
    MissingHeader,
    /// The header names a version this build does not read.
    UnsupportedVersion {
        /// The version token found in the header.
        found: String,
    },
    /// A required field never appeared.
    MissingField {
        /// Name of the missing field.
        field: &'static str,
    },
    /// A line did not match the grammar.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MissingHeader => {
                write!(f, "missing `sih-schedule v{SCHEDULE_VERSION}` header")
            }
            ScheduleError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported schedule version `{found}` (this build reads v{SCHEDULE_VERSION})"
                )
            }
            ScheduleError::MissingField { field } => write!(f, "missing required field `{field}`"),
            ScheduleError::Malformed { line, detail } => write!(f, "line {line}: {detail}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Captures the run executed so far by `sim` as a schedule: the exact
    /// executed script, the crash pattern and link-fault plan, plus the
    /// caller-supplied workload identity, parameters, and verdict.
    ///
    /// Because [`Simulation::script`] records each choice *before* the
    /// automaton steps, a run that panicked mid-step is captured up to and
    /// including the panicking choice.
    pub fn capture<A: Automaton>(
        sim: &Simulation<A>,
        checker: impl Into<String>,
        k: usize,
        seed: u64,
        max_steps: u64,
        verdict: impl Into<String>,
    ) -> Schedule {
        let n = sim.n();
        Schedule {
            checker: checker.into(),
            n,
            k,
            seed,
            max_steps,
            pattern: sim.pattern().clone(),
            faults: sim
                .network()
                .link_fault_plan()
                .cloned()
                .unwrap_or_else(|| LinkFaultPlan::reliable(n)),
            adversary: sim
                .network()
                .adversary_plan()
                .cloned()
                .unwrap_or_else(|| AdversaryPlan::honest(n)),
            attack: None, // a workload-level concept; the recorder fills it in
            armor: sim.network().armor().unwrap_or(Armor::NONE),
            choices: sim.script().to_vec(),
            verdict: verdict.into(),
        }
    }

    /// Whether every adversary field is at its default — such schedules
    /// serialize in the v1 grammar, keeping pre-adversary corpus files
    /// byte-stable. Equivalently: [`Schedule::to_text`] writes a v1
    /// header iff this is true (the version invariant the fuzzer's
    /// mutation operators must preserve).
    pub fn adversary_free(&self) -> bool {
        self.adversary.is_honest() && self.attack.is_none() && self.armor == Armor::NONE
    }

    /// A canonical 64-bit digest of the schedule: FNV-1a/64 over the
    /// exact serialized text. Because [`Schedule::to_text`] round-trips
    /// exactly, equal digests mean equal schedules (up to hash
    /// collisions) — the corpus-dedup and corpus-summary key of the
    /// fuzzer, identical across thread counts and platforms.
    pub fn digest(&self) -> u64 {
        crate::fingerprint::fnv1a_64(self.to_text().as_bytes())
    }

    /// Serializes to the versioned text format (parseable by
    /// [`Schedule::parse`]; round-trips exactly).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let version = if self.adversary_free() { 1 } else { SCHEDULE_VERSION };
        out.push_str(&format!("sih-schedule v{version}\n"));
        out.push_str(&format!("checker: {}\n", self.checker));
        out.push_str(&format!("n: {}\n", self.n));
        out.push_str(&format!("k: {}\n", self.k));
        out.push_str(&format!("seed: {}\n", self.seed));
        out.push_str(&format!("max-steps: {}\n", self.max_steps));
        out.push_str(&format!("verdict: {}\n", self.verdict));
        for p in self.pattern.all().iter() {
            if self.pattern.crashed_from_start_at(p) {
                out.push_str(&format!("crash-from-start: {p}\n"));
            } else if let Some(t) = self.pattern.crash_time(p) {
                out.push_str(&format!("crash: {p} @ {}\n", t.0));
            }
        }
        for w in self.faults.windows() {
            let (kind, stride, offset) = match w.fault {
                LinkFault::Drop { stride, offset } => ("drop", stride, offset),
                LinkFault::Duplicate { stride, offset } => ("dup", stride, offset),
            };
            let until = match w.until {
                Some(u) => u.0.to_string(),
                None => "inf".to_string(),
            };
            out.push_str(&format!(
                "link: {kind} {}->{} {offset}%{stride} @[{}, {until})\n",
                w.src, w.dst, w.from.0
            ));
        }
        if !self.adversary_free() {
            if self.armor != Armor::NONE {
                out.push_str(&format!("armor: {}\n", self.armor.rung()));
            }
            for w in self.adversary.windows() {
                let until = match w.until {
                    Some(u) => u.0.to_string(),
                    None => "inf".to_string(),
                };
                out.push_str(&format!(
                    "adversary: {} {}->{} {}%{} @[{}, {until}) x={}\n",
                    w.kind.name(),
                    w.src,
                    w.dst,
                    w.offset,
                    w.stride,
                    w.from.0,
                    w.x
                ));
            }
            if let Some(a) = self.attack {
                out.push_str(&format!("attack: {} x={}\n", a.kind.name(), a.x));
            }
        }
        for c in &self.choices {
            match c.deliver {
                None => out.push_str(&format!("choice: {} .\n", c.p)),
                Some(i) => out.push_str(&format!("choice: {} {i}\n", c.p)),
            }
        }
        out
    }

    /// Parses the versioned text format. Blank lines and `#` comments are
    /// skipped; errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Schedule, ScheduleError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

        let (lineno, header) = lines.next().ok_or(ScheduleError::MissingHeader)?;
        let version = header.strip_prefix("sih-schedule v").ok_or(ScheduleError::MissingHeader)?;
        if !matches!(version.parse::<u32>(), Ok(v) if (1..=SCHEDULE_VERSION).contains(&v)) {
            let _ = lineno;
            return Err(ScheduleError::UnsupportedVersion { found: version.to_string() });
        }

        let mut checker: Option<String> = None;
        let mut n: Option<usize> = None;
        let mut k: usize = 1;
        let mut seed: u64 = 0;
        let mut max_steps: Option<u64> = None;
        let mut verdict: Option<String> = None;
        let mut crashes: Vec<(ProcessId, Option<Time>)> = Vec::new();
        let mut windows: Vec<LinkFaultWindow> = Vec::new();
        let mut adv_windows: Vec<MutationWindow> = Vec::new();
        let mut attack: Option<AttackSpec> = None;
        let mut armor = Armor::NONE;
        let mut choices: Vec<Choice> = Vec::new();

        for (lineno, line) in lines {
            let (key, rest) = line.split_once(':').ok_or_else(|| ScheduleError::Malformed {
                line: lineno,
                detail: format!("expected `key: value`, got `{line}`"),
            })?;
            let rest = rest.trim();
            match key.trim() {
                "checker" => checker = Some(rest.to_string()),
                "n" => n = Some(parse_num(rest, lineno, "n")? as usize),
                "k" => k = parse_num(rest, lineno, "k")? as usize,
                "seed" => seed = parse_num(rest, lineno, "seed")?,
                "max-steps" => max_steps = Some(parse_num(rest, lineno, "max-steps")?),
                "verdict" => verdict = Some(rest.to_string()),
                "crash-from-start" => crashes.push((parse_pid(rest, lineno)?, None)),
                "crash" => {
                    let (p, t) = rest.split_once('@').ok_or_else(|| ScheduleError::Malformed {
                        line: lineno,
                        detail: format!("expected `crash: pI @ t`, got `{rest}`"),
                    })?;
                    crashes.push((
                        parse_pid(p.trim(), lineno)?,
                        Some(Time(parse_num(t.trim(), lineno, "crash time")?)),
                    ));
                }
                "link" => windows.push(parse_window(rest, lineno)?),
                "adversary" => adv_windows.push(parse_mutation(rest, lineno)?),
                "attack" => attack = Some(parse_attack(rest, lineno)?),
                "armor" => {
                    let rung = parse_num(rest, lineno, "armor rung")?;
                    if rung > u64::from(Armor::MAX.rung()) {
                        return Err(ScheduleError::Malformed {
                            line: lineno,
                            detail: format!(
                                "armor rung {rung} exceeds the ladder top {}",
                                Armor::MAX.rung()
                            ),
                        });
                    }
                    armor = Armor::level(rung as u8);
                }
                "choice" => {
                    let mut toks = rest.split_whitespace();
                    let p = parse_pid(
                        toks.next().ok_or_else(|| ScheduleError::Malformed {
                            line: lineno,
                            detail: "choice needs a process".to_string(),
                        })?,
                        lineno,
                    )?;
                    let deliver = match toks.next() {
                        Some(".") | None => None,
                        Some(tok) => Some(parse_num(tok, lineno, "delivery index")? as usize),
                    };
                    choices.push(Choice { p, deliver });
                }
                other => {
                    return Err(ScheduleError::Malformed {
                        line: lineno,
                        detail: format!("unknown key `{other}`"),
                    })
                }
            }
        }

        let checker = checker.ok_or(ScheduleError::MissingField { field: "checker" })?;
        let n = n.ok_or(ScheduleError::MissingField { field: "n" })?;
        let max_steps = max_steps.ok_or(ScheduleError::MissingField { field: "max-steps" })?;
        let verdict = verdict.ok_or(ScheduleError::MissingField { field: "verdict" })?;

        let mut pb = FailurePattern::builder(n);
        for (p, t) in crashes {
            pb = match t {
                None => pb.crash_from_start(p),
                Some(t) => pb.crash_at(p, t),
            };
        }
        Ok(Schedule {
            checker,
            n,
            k,
            seed,
            max_steps,
            pattern: pb.build_unchecked(),
            faults: plan_from_windows(n, &windows),
            adversary: adversary_from_windows(n, &adv_windows),
            attack,
            armor,
            choices,
            verdict,
        })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn parse_num(tok: &str, line: usize, what: &str) -> Result<u64, ScheduleError> {
    tok.parse::<u64>().map_err(|_| ScheduleError::Malformed {
        line,
        detail: format!("{what}: expected a number, got `{tok}`"),
    })
}

fn parse_pid(tok: &str, line: usize) -> Result<ProcessId, ScheduleError> {
    tok.strip_prefix('p').and_then(|d| d.parse::<u32>().ok()).map(ProcessId).ok_or_else(|| {
        ScheduleError::Malformed {
            line,
            detail: format!("expected a process id `pI`, got `{tok}`"),
        }
    })
}

/// Parses `drop p0->p1 0%1 @[0, 200)` / `dup p2->p0 1%3 @[5, inf)`.
fn parse_window(rest: &str, line: usize) -> Result<LinkFaultWindow, ScheduleError> {
    let bad = |detail: String| ScheduleError::Malformed { line, detail };
    let mut toks = rest.split_whitespace();
    let kind = toks.next().ok_or_else(|| bad("empty link spec".to_string()))?;
    let linkspec = toks.next().ok_or_else(|| bad("link needs `pI->pJ`".to_string()))?;
    let sel = toks.next().ok_or_else(|| bad("link needs `offset%stride`".to_string()))?;
    let span: String = toks.collect::<Vec<_>>().join(" ");

    let (src, dst) = linkspec
        .split_once("->")
        .ok_or_else(|| bad(format!("expected `pI->pJ`, got `{linkspec}`")))?;
    let (src, dst) = (parse_pid(src, line)?, parse_pid(dst, line)?);

    let (offset, stride) =
        sel.split_once('%').ok_or_else(|| bad(format!("expected `offset%stride`, got `{sel}`")))?;
    let (offset, stride) = (parse_num(offset, line, "offset")?, parse_num(stride, line, "stride")?);

    let span = span
        .strip_prefix("@[")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| bad(format!("expected `@[from, until)`, got `{span}`")))?;
    let (from, until) =
        span.split_once(',').ok_or_else(|| bad(format!("expected `from, until`, got `{span}`")))?;
    let from = Time(parse_num(from.trim(), line, "window start")?);
    let until = match until.trim() {
        "inf" => None,
        t => Some(Time(parse_num(t, line, "window end")?)),
    };

    let fault = match kind {
        "drop" => LinkFault::Drop { stride, offset },
        "dup" => LinkFault::Duplicate { stride, offset },
        other => return Err(bad(format!("unknown link fault `{other}`"))),
    };
    Ok(LinkFaultWindow { src, dst, fault, from, until })
}

/// Parses `perturb p0->p1 0%1 @[0, 40) x=9` (same link/selector/span
/// grammar as `link:`, plus a mutation kind and its `x` parameter).
fn parse_mutation(rest: &str, line: usize) -> Result<MutationWindow, ScheduleError> {
    let bad = |detail: String| ScheduleError::Malformed { line, detail };
    let (rest, x) = match rest.rsplit_once("x=") {
        Some((head, x)) => (head.trim(), parse_num(x.trim(), line, "mutation x")?),
        None => return Err(bad(format!("adversary line needs a trailing `x=N`, got `{rest}`"))),
    };
    let mut toks = rest.split_whitespace();
    let kind = toks.next().ok_or_else(|| bad("empty adversary spec".to_string()))?;
    let kind = MutationKind::from_name(kind)
        .ok_or_else(|| bad(format!("unknown mutation kind `{kind}`")))?;
    let linkspec = toks.next().ok_or_else(|| bad("adversary needs `pI->pJ`".to_string()))?;
    let sel = toks.next().ok_or_else(|| bad("adversary needs `offset%stride`".to_string()))?;
    let span: String = toks.collect::<Vec<_>>().join(" ");

    let (src, dst) = linkspec
        .split_once("->")
        .ok_or_else(|| bad(format!("expected `pI->pJ`, got `{linkspec}`")))?;
    let (src, dst) = (parse_pid(src, line)?, parse_pid(dst, line)?);

    let (offset, stride) =
        sel.split_once('%').ok_or_else(|| bad(format!("expected `offset%stride`, got `{sel}`")))?;
    let (offset, stride) = (parse_num(offset, line, "offset")?, parse_num(stride, line, "stride")?);
    if stride == 0 || offset >= stride {
        return Err(bad(format!("selector `{offset}%{stride}` needs offset < stride, stride > 0")));
    }

    let span = span
        .strip_prefix("@[")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| bad(format!("expected `@[from, until)`, got `{span}`")))?;
    let (from, until) =
        span.split_once(',').ok_or_else(|| bad(format!("expected `from, until`, got `{span}`")))?;
    let from = Time(parse_num(from.trim(), line, "window start")?);
    let until = match until.trim() {
        "inf" => None,
        t => Some(Time(parse_num(t, line, "window end")?)),
    };
    if let Some(u) = until {
        if u <= from {
            return Err(bad(format!("empty adversary window @[{}, {})", from.0, u.0)));
        }
    }
    Ok(MutationWindow { src, dst, kind, x, stride, offset, from, until })
}

/// Parses `equivocate x=3` / `split-ack x=1`.
fn parse_attack(rest: &str, line: usize) -> Result<AttackSpec, ScheduleError> {
    let bad = |detail: String| ScheduleError::Malformed { line, detail };
    let (name, x) = match rest.rsplit_once("x=") {
        Some((head, x)) => (head.trim(), parse_num(x.trim(), line, "attack x")?),
        None => (rest.trim(), 0),
    };
    let kind =
        AttackKind::from_name(name).ok_or_else(|| bad(format!("unknown attack `{name}`")))?;
    Ok(AttackSpec { kind, x })
}

/// Rebuilds a plan from an explicit window list (used by the parser, the
/// shrinker's window mutations, and the fuzzer's mutation operators).
pub(crate) fn plan_from_windows(n: usize, windows: &[LinkFaultWindow]) -> LinkFaultPlan {
    let mut b = LinkFaultPlan::builder(n);
    for w in windows {
        b = match w.fault {
            LinkFault::Drop { stride, offset } => {
                b.drop_every(w.src, w.dst, stride, offset, w.from, w.until)
            }
            LinkFault::Duplicate { stride, offset } => {
                b.duplicate_every(w.src, w.dst, stride, offset, w.from, w.until)
            }
        };
    }
    b.build()
}

/// Rebuilds an adversary plan from an explicit window list (used by the
/// parser, the shrinker's window mutations, and the fuzzer's mutation
/// operators).
pub(crate) fn adversary_from_windows(n: usize, windows: &[MutationWindow]) -> AdversaryPlan {
    let mut b = AdversaryPlan::builder(n);
    for &w in windows {
        b = b.mutate(w);
    }
    b.build()
}

/// Rebuilds a crash pattern over `n` processes from an explicit crash
/// list (`None` = crashed from the start).
pub(crate) fn pattern_from_crashes(
    n: usize,
    crashes: &[(ProcessId, Option<Time>)],
) -> FailurePattern {
    let mut pb = FailurePattern::builder(n);
    for &(p, t) in crashes {
        pb = match t {
            None => pb.crash_from_start(p),
            Some(t) => pb.crash_at(p, t),
        };
    }
    pb.build_unchecked()
}

pub(crate) fn crash_list(pattern: &FailurePattern) -> Vec<(ProcessId, Option<Time>)> {
    pattern
        .all()
        .iter()
        .filter_map(|p| {
            if pattern.crashed_from_start_at(p) {
                Some((p, None))
            } else {
                pattern.crash_time(p).map(|t| (p, Some(t)))
            }
        })
        .collect()
}

/// Knobs of [`shrink_schedule`].
#[derive(Clone, Copy, Debug)]
pub struct ShrinkOptions {
    /// Smallest `n` the workload's claim still covers; the `n`-reduction
    /// pass never goes below this.
    pub min_n: usize,
    /// Maximum number of full pass rounds (each round runs every pass
    /// once); the shrinker also stops early at a fixpoint.
    pub max_rounds: u32,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { min_n: 1, max_rounds: 12 }
    }
}

/// What the shrinker did, for reporting and for the ≤-ratio acceptance
/// checks in tests and CI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkReport {
    /// Choice count of the input schedule.
    pub original_len: usize,
    /// Choice count of the minimized schedule.
    pub final_len: usize,
    /// Candidate schedules proposed.
    pub candidates_tried: u64,
    /// Candidates the evaluator confirmed (failure preserved).
    pub candidates_accepted: u64,
    /// Pass rounds executed.
    pub rounds: u32,
}

/// Delta-debugging minimizer. `eval` is the reproduction oracle: given a
/// candidate, it replays it against the schedule's checker and returns the
/// *canonicalized* schedule (its actually-executed choice sequence) iff
/// the original verdict reproduces, else `None`.
///
/// Passes, run round-robin to a fixpoint (or `max_rounds`):
///
/// 1. **ddmin over choices** — remove chunks of the choice sequence at
///    halving granularity (drops deliveries and compute steps);
/// 2. **fault windows** — remove whole windows; close never-healing
///    windows; halve window spans;
/// 3. **adversary** — drop the scripted attack; remove whole mutation
///    windows; close never-ending windows; halve window spans;
/// 4. **crashes** — remove crashes entirely, or merge a mid-run crash
///    window into crash-from-start;
/// 5. **n-reduction** — drop the highest process while nothing in the
///    schedule references it and `n > min_n`.
///
/// The algorithm is serial and deterministic: passes run in a fixed
/// order, candidates are proposed in a fixed order, and nothing depends
/// on thread count or timing. If the input itself does not reproduce
/// (`eval(original)` is `None`), it is returned unchanged.
pub fn shrink_schedule<F>(
    original: &Schedule,
    opts: &ShrinkOptions,
    eval: &mut F,
) -> (Schedule, ShrinkReport)
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    let mut report =
        ShrinkReport { original_len: original.choices.len(), ..ShrinkReport::default() };
    report.candidates_tried += 1;
    let mut best = match eval(original) {
        Some(canon) => {
            report.candidates_accepted += 1;
            canon
        }
        None => {
            report.final_len = original.choices.len();
            return (original.clone(), report);
        }
    };

    while report.rounds < opts.max_rounds {
        report.rounds += 1;
        let mut changed = false;
        changed |= ddmin_pass(&mut best, eval, &mut report);
        changed |= fault_pass(&mut best, eval, &mut report);
        changed |= adversary_pass(&mut best, eval, &mut report);
        changed |= crash_pass(&mut best, eval, &mut report);
        changed |= reduce_n_pass(&mut best, opts.min_n, eval, &mut report);
        if !changed {
            break;
        }
    }
    report.final_len = best.choices.len();
    (best, report)
}

fn try_accept<F>(
    best: &mut Schedule,
    cand: Schedule,
    eval: &mut F,
    report: &mut ShrinkReport,
) -> bool
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    report.candidates_tried += 1;
    match eval(&cand) {
        Some(canon) => {
            report.candidates_accepted += 1;
            *best = canon;
            true
        }
        None => false,
    }
}

fn ddmin_pass<F>(best: &mut Schedule, eval: &mut F, report: &mut ShrinkReport) -> bool
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    let mut any = false;
    if best.choices.is_empty() {
        return false;
    }
    let mut chunk = best.choices.len().div_ceil(2);
    loop {
        let mut i = 0;
        while i < best.choices.len() {
            let mut cand = best.clone();
            let end = (i + chunk).min(cand.choices.len());
            cand.choices.drain(i..end);
            if try_accept(best, cand, eval, report) {
                any = true; // removed; re-test the same position
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    any
}

fn fault_pass<F>(best: &mut Schedule, eval: &mut F, report: &mut ShrinkReport) -> bool
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    let mut any = false;
    // Remove whole windows (snapshot indices; retry in place after a hit).
    let mut i = 0;
    while i < best.faults.windows().len() {
        let mut ws = best.faults.windows().to_vec();
        ws.remove(i);
        let mut cand = best.clone();
        cand.faults = plan_from_windows(cand.n, &ws);
        if try_accept(best, cand, eval, report) {
            any = true;
        } else {
            i += 1;
        }
    }
    // Close never-healing windows at the step horizon, then halve spans.
    for i in 0..best.faults.windows().len() {
        let w = best.faults.windows()[i];
        if w.until.is_none() {
            let mut ws = best.faults.windows().to_vec();
            ws[i].until = Some(Time(best.max_steps));
            let mut cand = best.clone();
            cand.faults = plan_from_windows(cand.n, &ws);
            any |= try_accept(best, cand, eval, report);
        }
        loop {
            let w = best.faults.windows()[i];
            let Some(u) = w.until else { break };
            let span = u.0.saturating_sub(w.from.0);
            if span <= 1 {
                break;
            }
            let mut ws = best.faults.windows().to_vec();
            ws[i].until = Some(Time(w.from.0 + span / 2));
            let mut cand = best.clone();
            cand.faults = plan_from_windows(cand.n, &ws);
            if try_accept(best, cand, eval, report) {
                any = true;
            } else {
                break;
            }
        }
    }
    any
}

fn adversary_pass<F>(best: &mut Schedule, eval: &mut F, report: &mut ShrinkReport) -> bool
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    let mut any = false;
    // Drop the scripted attack first: if the mutation windows alone
    // reproduce, the minimal witness should say so.
    if best.attack.is_some() {
        let mut cand = best.clone();
        cand.attack = None;
        any |= try_accept(best, cand, eval, report);
    }
    // Remove whole mutation windows (retry in place after a hit).
    let mut i = 0;
    while i < best.adversary.windows().len() {
        let mut ws = best.adversary.windows().to_vec();
        ws.remove(i);
        let mut cand = best.clone();
        cand.adversary = adversary_from_windows(cand.n, &ws);
        if try_accept(best, cand, eval, report) {
            any = true;
        } else {
            i += 1;
        }
    }
    // Close never-ending windows at the step horizon, then halve spans.
    for i in 0..best.adversary.windows().len() {
        let w = best.adversary.windows()[i];
        if w.until.is_none() {
            let mut ws = best.adversary.windows().to_vec();
            ws[i].until = Some(Time(best.max_steps.max(w.from.0 + 1)));
            let mut cand = best.clone();
            cand.adversary = adversary_from_windows(cand.n, &ws);
            any |= try_accept(best, cand, eval, report);
        }
        loop {
            let w = best.adversary.windows()[i];
            let Some(u) = w.until else { break };
            let span = u.0.saturating_sub(w.from.0);
            if span <= 1 {
                break;
            }
            let mut ws = best.adversary.windows().to_vec();
            ws[i].until = Some(Time(w.from.0 + span / 2));
            let mut cand = best.clone();
            cand.adversary = adversary_from_windows(cand.n, &ws);
            if try_accept(best, cand, eval, report) {
                any = true;
            } else {
                break;
            }
        }
    }
    any
}

fn crash_pass<F>(best: &mut Schedule, eval: &mut F, report: &mut ShrinkReport) -> bool
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    let mut any = false;
    for p in best.pattern.all().iter() {
        let crashes = crash_list(&best.pattern);
        let Some(idx) = crashes.iter().position(|&(q, _)| q == p) else { continue };
        // Try removing the crash entirely (p becomes correct).
        let mut without = crashes.clone();
        without.remove(idx);
        let mut cand = best.clone();
        cand.pattern = pattern_from_crashes(cand.n, &without);
        if try_accept(best, cand, eval, report) {
            any = true;
            continue;
        }
        // Merge a mid-run crash window into crash-from-start: the faulty
        // interval [t, ∞) widens to [0, ∞), removing p's steps entirely.
        if crashes[idx].1.is_some() {
            let mut merged = crashes;
            merged[idx].1 = None;
            let mut cand = best.clone();
            cand.pattern = pattern_from_crashes(cand.n, &merged);
            any |= try_accept(best, cand, eval, report);
        }
    }
    any
}

fn reduce_n_pass<F>(
    best: &mut Schedule,
    min_n: usize,
    eval: &mut F,
    report: &mut ShrinkReport,
) -> bool
where
    F: FnMut(&Schedule) -> Option<Schedule>,
{
    let mut any = false;
    while best.n > min_n {
        let q = ProcessId((best.n - 1) as u32);
        let referenced = best.choices.iter().any(|c| c.p == q)
            || best.faults.windows().iter().any(|w| w.src == q || w.dst == q)
            || best.adversary.windows().iter().any(|w| w.src == q || w.dst == q);
        if referenced {
            break;
        }
        let crashes: Vec<_> =
            crash_list(&best.pattern).into_iter().filter(|&(p, _)| p != q).collect();
        let mut cand = best.clone();
        cand.n = best.n - 1;
        cand.pattern = pattern_from_crashes(cand.n, &crashes);
        cand.faults = plan_from_windows(cand.n, best.faults.windows());
        cand.adversary = adversary_from_windows(cand.n, best.adversary.windows());
        if try_accept(best, cand, eval, report) {
            any = true;
        } else {
            break;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            checker: "fig2-weak-sigma".to_string(),
            n: 4,
            k: 3,
            seed: 7,
            max_steps: 40,
            pattern: FailurePattern::builder(4)
                .crash_from_start(ProcessId(3))
                .crash_at(ProcessId(2), Time(10))
                .build(),
            faults: LinkFaultPlan::builder(4)
                .drop_link(ProcessId(0), ProcessId(1), Time(0), Some(Time(200)))
                .duplicate_every(ProcessId(2), ProcessId(0), 3, 1, Time(5), None)
                .build(),
            adversary: AdversaryPlan::honest(4),
            attack: None,
            armor: Armor::NONE,
            choices: vec![
                Choice { p: ProcessId(0), deliver: None },
                Choice { p: ProcessId(1), deliver: Some(0) },
                Choice { p: ProcessId(0), deliver: Some(2) },
            ],
            verdict: "violation:agreement".to_string(),
        }
    }

    fn byz_sample() -> Schedule {
        let mut s = sample();
        s.checker = "fig2-byz-perturb".to_string();
        s.adversary = AdversaryPlan::builder(4)
            .perturb(ProcessId(0), ProcessId(1), 9, Time(0), Some(Time(40)))
            .forge_sender(ProcessId(2), ProcessId(0), 1, Time(5), None)
            .build();
        s.attack = Some(AttackSpec { kind: AttackKind::Equivocate, x: 3 });
        s.armor = Armor::SENDER_ID;
        s
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let s = sample();
        let text = s.to_text();
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn adversary_free_schedules_serialize_as_v1() {
        let s = sample();
        assert!(s.to_text().starts_with("sih-schedule v1\n"));
        assert!(!s.to_text().contains("adversary:"));
    }

    #[test]
    fn v2_roundtrip_is_exact() {
        let s = byz_sample();
        let text = s.to_text();
        assert!(text.starts_with("sih-schedule v2\n"));
        assert!(text.contains("armor: 1\n"));
        assert!(text.contains("adversary: perturb p0->p1 0%1 @[0, 40) x=9\n"));
        assert!(text.contains("adversary: forge-sender p2->p0 0%1 @[5, inf) x=1\n"));
        assert!(text.contains("attack: equivocate x=3\n"));
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn v2_default_armor_line_is_omitted() {
        let mut s = byz_sample();
        s.armor = Armor::NONE;
        let text = s.to_text();
        assert!(!text.contains("armor:"));
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn malformed_adversary_lines_are_rejected() {
        let base = "sih-schedule v2\nchecker: x\nn: 2\nmax-steps: 5\nverdict: ok\n";
        for bad in [
            "adversary: warp p0->p1 0%1 @[0, 5) x=1\n", // unknown kind
            "adversary: flip p0->p1 0%1 @[0, 5)\n",     // missing x=
            "adversary: flip p0->p1 1%1 @[0, 5) x=1\n", // offset >= stride
            "adversary: flip p0->p1 0%1 @[5, 5) x=1\n", // empty window
            "attack: nuke x=1\n",                       // unknown attack
            "armor: 9\n",                               // above the ladder
        ] {
            let text = format!("{base}{bad}");
            assert!(
                matches!(Schedule::parse(&text), Err(ScheduleError::Malformed { .. })),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = sample();
        let text = format!("# a corpus entry\n\n{}\n# trailing note\n", s.to_text());
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn header_errors_are_typed() {
        assert_eq!(Schedule::parse(""), Err(ScheduleError::MissingHeader));
        assert_eq!(Schedule::parse("schedule v1\n"), Err(ScheduleError::MissingHeader));
        assert_eq!(
            Schedule::parse("sih-schedule v99\n"),
            Err(ScheduleError::UnsupportedVersion { found: "99".to_string() })
        );
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = Schedule::parse("sih-schedule v1\nn: 2\nmax-steps: 5\nverdict: ok\n");
        assert_eq!(err, Err(ScheduleError::MissingField { field: "checker" }));
        let err = Schedule::parse("sih-schedule v1\nchecker: x\nmax-steps: 5\nverdict: ok\n");
        assert_eq!(err, Err(ScheduleError::MissingField { field: "n" }));
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = "sih-schedule v1\nchecker: x\nn: 2\nchoice: q7 .\n";
        match Schedule::parse(text) {
            Err(ScheduleError::Malformed { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected Malformed, got {other:?}"),
        }
        let text = "sih-schedule v1\nbogus-key: 3\n";
        match Schedule::parse(text) {
            Err(ScheduleError::Malformed { line, detail }) => {
                assert_eq!(line, 2);
                assert!(detail.contains("bogus-key"));
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn display_errors_are_informative() {
        let e = ScheduleError::Malformed { line: 3, detail: "boom".to_string() };
        assert_eq!(e.to_string(), "line 3: boom");
        assert!(ScheduleError::MissingHeader.to_string().contains("sih-schedule"));
    }

    /// A toy oracle: the "failure" reproduces iff at least one choice
    /// steps p1 AND the pattern crashes p2 (any time). The canonical form
    /// just echoes the candidate.
    fn toy_eval(cand: &Schedule) -> Option<Schedule> {
        let steps_p1 = cand.choices.iter().any(|c| c.p == ProcessId(1));
        let crashes_p2 = cand.pattern.crash_time(ProcessId(2)).is_some();
        (steps_p1 && crashes_p2).then(|| cand.clone())
    }

    #[test]
    fn shrink_reaches_the_minimal_witness() {
        let mut s = sample();
        s.choices = (0..32).map(|i| Choice { p: ProcessId(i % 3), deliver: None }).collect();
        let (min, rep) = shrink_schedule(&s, &ShrinkOptions::default(), &mut toy_eval);
        // Exactly the one p1 step survives; all windows vanish; the p2
        // crash merges to from-start; p3 (from-start, unreferenced) is
        // removed and n drops to 3.
        assert_eq!(min.choices, vec![Choice { p: ProcessId(1), deliver: None }]);
        assert!(min.faults.is_reliable());
        assert!(min.pattern.crashed_from_start_at(ProcessId(2)));
        assert_eq!(min.n, 3);
        assert_eq!(rep.original_len, 32);
        assert_eq!(rep.final_len, 1);
        assert!(rep.candidates_accepted > 0);
    }

    /// Oracle for the adversary pass: reproduces iff some perturb window
    /// covers the 0→1 link (the attack and the forge window are noise).
    fn byz_eval(cand: &Schedule) -> Option<Schedule> {
        cand.adversary
            .windows()
            .iter()
            .any(|w| {
                w.kind == MutationKind::Perturb && w.src == ProcessId(0) && w.dst == ProcessId(1)
            })
            .then(|| cand.clone())
    }

    #[test]
    fn shrink_minimizes_adversary_windows_and_drops_the_attack() {
        let s = byz_sample();
        let (min, rep) = shrink_schedule(&s, &ShrinkOptions::default(), &mut byz_eval);
        assert_eq!(min.attack, None);
        assert_eq!(min.adversary.windows().len(), 1);
        let w = min.adversary.windows()[0];
        assert_eq!(w.kind, MutationKind::Perturb);
        // The span halves down to the minimal [0, 1) slice.
        assert_eq!((w.from, w.until), (Time(0), Some(Time(1))));
        assert!(rep.candidates_accepted > 0);
        // Deterministic, like every other pass.
        assert_eq!(shrink_schedule(&s, &ShrinkOptions::default(), &mut byz_eval).0, min);
    }

    #[test]
    fn shrink_is_deterministic() {
        let mut s = sample();
        s.choices = (0..17).map(|i| Choice { p: ProcessId(i % 4), deliver: None }).collect();
        let a = shrink_schedule(&s, &ShrinkOptions::default(), &mut toy_eval);
        let b = shrink_schedule(&s, &ShrinkOptions::default(), &mut toy_eval);
        assert_eq!(a, b);
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let mut s = sample();
        s.pattern = FailurePattern::all_correct(4); // oracle needs a p2 crash
        let (out, rep) = shrink_schedule(&s, &ShrinkOptions::default(), &mut toy_eval);
        assert_eq!(out, s);
        assert_eq!(rep.candidates_accepted, 0);
    }

    #[test]
    fn min_n_floor_is_respected() {
        let mut s = sample();
        s.choices = vec![Choice { p: ProcessId(1), deliver: None }];
        let opts = ShrinkOptions { min_n: 4, ..ShrinkOptions::default() };
        let (min, _) = shrink_schedule(&s, &opts, &mut toy_eval);
        assert_eq!(min.n, 4);
    }
}
