//! The simulation engine: executes runs of the paper's model.
//!
//! A [`Simulation`] owns the `n` automata, the network and the failure
//! pattern, and executes atomic steps under a [`Scheduler`]'s choices and
//! a [`FailureDetector`] history. Given the same automata, pattern,
//! history and choice sequence, a run is **bit-for-bit reproducible** —
//! the engine records every executed choice as a script
//! ([`Simulation::script`]) precisely so adversary constructions can
//! replay prefixes (Lemmas 7, 11, 15).

// sih-analysis: allow(index-reachable) — procs/pending/decisions are n-sized arrays indexed
// by ProcessId from the scheduler's own choice set, which is bounded by n at construction.
use crate::automaton::{Automaton, Effects, SendOp, StepInput};
use crate::fingerprint::Fnv64;
use crate::network::{Corruptible, Network};
use crate::scheduler::{Choice, Scheduler};
use crate::trace::{Trace, TraceLevel};
use sih_model::{
    AdversaryPlan, Armor, FailureDetector, FailurePattern, FdOutput, LinkFaultPlan, ProcSet,
    ProcessId, ProcessSet, Time,
};
use std::collections::VecDeque;
use std::fmt;

/// The scheduler's view of the engine before a step.
#[derive(Debug)]
pub struct SchedState<'a> {
    /// System size.
    pub n: usize,
    /// The time the next step will carry.
    pub next_time: Time,
    /// Processes allowed to take the next step (alive and not halted).
    pub schedulable_set: ProcessSet,
    /// Processes that have halted (pseudocode `return`).
    pub halted: ProcessSet,
    pending: &'a [usize],
    oldest_sent: &'a [Option<Time>],
    oldest_idx: &'a [Option<usize>],
    starved: bool,
}

impl SchedState<'_> {
    /// Iterates over schedulable processes in id order.
    pub fn schedulable(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.schedulable_set.iter()
    }

    /// Whether `p` may take the next step.
    pub fn is_schedulable(&self, p: ProcessId) -> bool {
        self.schedulable_set.contains(p)
    }

    /// Number of messages pending at `p`.
    pub fn pending_count(&self, p: ProcessId) -> usize {
        self.pending[p.index()]
    }

    /// Age (in steps) of the oldest message pending at `p`.
    pub fn oldest_age(&self, p: ProcessId) -> Option<u64> {
        self.oldest_sent[p.index()].map(|s| self.next_time - s)
    }

    /// Queue index of the oldest message pending at `p`.
    pub fn oldest_index(&self, p: ProcessId) -> Option<usize> {
        self.oldest_idx[p.index()]
    }

    /// Whether the system is provably stuck: there are schedulable
    /// processes, but every one of them is
    /// [quiescent](crate::Automaton::quiescent) with an empty pending
    /// queue — no step anyone can take will ever produce an effect again.
    pub fn starved(&self) -> bool {
        self.starved
    }
}

/// Why a [`Simulation::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// Every correct process has halted.
    AllCorrectHalted,
    /// The step budget was exhausted.
    MaxSteps,
    /// The scheduler returned `None`.
    SchedulerExhausted,
    /// The system is provably stuck: schedulable processes exist, but
    /// every one is [quiescent](crate::Automaton::quiescent) with an
    /// empty pending queue, so no reachable step has any effect — e.g. a
    /// permanent partition starved every quorum. Detected eagerly so such
    /// runs stop in O(1) steps instead of spinning to `MaxSteps`.
    Starved,
}

/// Statistics of a finished [`Simulation::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Steps executed by this call.
    pub steps: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Network accounting at stop time: total messages sent (every copy,
    /// enqueued or dropped).
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages the link-fault plan dropped.
    pub dropped: u64,
    /// Extra copies the link-fault plan enqueued.
    pub duplicated: u64,
    /// Envelopes the mutation adversary tampered with that were removed
    /// from the queues (counted here *instead of* in `delivered`).
    pub mutated: u64,
    /// Sends on which the adversary forged provenance (sender id or
    /// quorum ack).
    pub forged: u64,
    /// Adversary actions neutralized by the installed armor rung.
    pub armored: u64,
    /// Messages still pending at stop time. The counters always satisfy
    /// `sent == delivered + dropped + mutated + in_flight`.
    pub in_flight: u64,
}

/// A liveness verdict for runs over faulty links: safety checkers always
/// apply, but termination/completion can legitimately fail when the run
/// was starved by a partition that never heals (or ran out of budget
/// while faults were still active). See
/// `check_k_set_agreement_degraded` in `sih-agreement` and
/// `check_linearizable_degraded` in `sih-registers`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LivenessVerdict {
    /// Safety held and the run completed (terminated / all ops done).
    Live,
    /// Safety held, but the run stopped before completing for an excusable
    /// reason ([`StopReason::Starved`] or [`StopReason::MaxSteps`] under
    /// unquiesced faults) — the degraded-but-correct outcome the paper's
    /// quorum algorithms exhibit under partitions.
    SafeButNotLive,
}

/// The observable side effects of one executed step.
///
/// Returned by [`Simulation::step`] so callers that replay many sibling
/// steps (the exhaustive explorer's partial-order reduction) can judge
/// commutativity without diffing traces. A step is [*quiet*] when it
/// produced none of the **time-stamped checker events** — decisions,
/// emulated-detector updates, register-operation boundaries. Quiet steps
/// may still send and halt: neither observable carries a timestamp the
/// property checkers read, so swapping two quiet steps of different
/// processes leaves every checker input unchanged.
///
/// [*quiet*]: StepReport::quiet
#[derive(Clone, Copy, Debug, Default)]
pub struct StepReport {
    /// The step decided a value.
    pub decided: bool,
    /// The step updated the emulated failure-detector output.
    pub emulated: bool,
    /// The step produced register-operation invoke/return events.
    pub ops: bool,
    /// The step halted its process.
    pub halted: bool,
    /// Number of messages the step sent.
    pub sent: usize,
}

impl StepReport {
    /// Whether the step produced no time-stamped checker events (no
    /// decision, no emulated-output update, no register-op boundary).
    pub fn quiet(&self) -> bool {
        !self.decided && !self.emulated && !self.ops
    }
}

/// A run in progress (or finished): automata + network + pattern + trace.
#[derive(Debug)]
pub struct Simulation<A: Automaton> {
    procs: Vec<A>,
    net: Network<A::Msg>,
    pattern: FailurePattern,
    now: Time,
    trace: Trace,
    halted: ProcSet,
    // Counters shadowing `halted`/`trace.decided()` restricted to correct
    // processes, so the run-loop termination tests (`all_correct_halted`,
    // `all_correct_decided`) are O(1) comparisons at any `n` instead of
    // 64-capped subset tests.
    halted_correct: usize,
    decided_correct: usize,
    script: Vec<Choice>,
    record_script: bool,
    // Scratch `Effects` reused across steps: at n = 10⁵ a fresh
    // `Effects::new()` per step is four Vec allocations per step; reusing
    // one arena makes stepping allocation-free on the fast path.
    scratch_eff: Effects<A::Msg>,
    // Scratch buffers for SchedState (reused across steps).
    scratch_pending: Vec<usize>,
    scratch_oldest_sent: Vec<Option<Time>>,
    scratch_oldest_idx: Vec<Option<usize>>,
}

// Manual Clone so `clone_from` reuses every heap allocation of the
// destination (queues, trace event log, script, scratch buffers). The
// exhaustive explorer materializes one child simulation per tree edge;
// with the derive's default `clone_from` (allocate a fresh clone, drop
// the old one) those allocations dominated its profile.
impl<A: Automaton + Clone> Clone for Simulation<A> {
    fn clone(&self) -> Self {
        Simulation {
            procs: self.procs.clone(),
            net: self.net.clone(),
            pattern: self.pattern.clone(),
            now: self.now,
            trace: self.trace.clone(),
            halted: self.halted.clone(),
            halted_correct: self.halted_correct,
            decided_correct: self.decided_correct,
            script: self.script.clone(),
            record_script: self.record_script,
            scratch_eff: Effects::new(),
            scratch_pending: self.scratch_pending.clone(),
            scratch_oldest_sent: self.scratch_oldest_sent.clone(),
            scratch_oldest_idx: self.scratch_oldest_idx.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.procs.clone_from(&source.procs);
        self.net.clone_from(&source.net);
        self.pattern.clone_from(&source.pattern);
        self.now = source.now;
        self.trace.clone_from(&source.trace);
        self.halted.clone_from(&source.halted);
        self.halted_correct = source.halted_correct;
        self.decided_correct = source.decided_correct;
        self.script.clone_from(&source.script);
        self.record_script = source.record_script;
        self.scratch_pending.clone_from(&source.scratch_pending);
        self.scratch_oldest_sent.clone_from(&source.scratch_oldest_sent);
        self.scratch_oldest_idx.clone_from(&source.scratch_oldest_idx);
    }
}

impl<A: Automaton> Simulation<A> {
    /// A fresh run of the given automata under `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len() != pattern.n()`.
    pub fn new(procs: Vec<A>, pattern: FailurePattern) -> Self {
        Self::with_emulated_initial(procs, pattern, FdOutput::Bot)
    }

    /// Like [`Simulation::new`], but sets the initial value of every
    /// process's *emulated* failure-detector output (what the trace's
    /// emulated history reports before the first `set_output`).
    pub fn with_emulated_initial(
        procs: Vec<A>,
        pattern: FailurePattern,
        emulated_initial: FdOutput,
    ) -> Self {
        assert_eq!(procs.len(), pattern.n(), "one automaton per process");
        let n = procs.len();
        Simulation {
            procs,
            net: Network::new(n),
            pattern,
            now: Time::ZERO,
            trace: Trace::new(n, emulated_initial),
            halted: ProcSet::with_capacity(n),
            halted_correct: 0,
            decided_correct: 0,
            script: Vec::new(),
            record_script: true,
            scratch_eff: Effects::new(),
            scratch_pending: vec![0; n],
            scratch_oldest_sent: vec![None; n],
            scratch_oldest_idx: vec![None; n],
        }
    }

    /// Sets how much the trace records (builder form). See [`TraceLevel`].
    #[must_use]
    pub fn with_trace_level(mut self, level: TraceLevel) -> Self {
        self.set_trace_level(level);
        self
    }

    /// Sets how much the trace records. Call before the first step;
    /// events already recorded are kept.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace.set_level(level);
    }

    /// Rewinds to a fresh run of `procs` under `pattern`, reusing the
    /// network-queue, trace and scratch allocations of the previous run
    /// (the trace's [`TraceLevel`] is kept). Equivalent to replacing
    /// `self` with [`Simulation::new`], minus the per-run allocations —
    /// sweep pipelines call this once per run.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len() != pattern.n()`.
    pub fn reset(&mut self, procs: Vec<A>, pattern: &FailurePattern) {
        self.reset_with_emulated_initial(procs, pattern, FdOutput::Bot);
    }

    /// Like [`Simulation::reset`], with the initial emulated
    /// failure-detector output of [`Simulation::with_emulated_initial`].
    pub fn reset_with_emulated_initial(
        &mut self,
        procs: Vec<A>,
        pattern: &FailurePattern,
        emulated_initial: FdOutput,
    ) {
        assert_eq!(procs.len(), pattern.n(), "one automaton per process");
        let n = procs.len();
        self.procs = procs;
        self.pattern.clone_from(pattern);
        self.now = Time::ZERO;
        self.halted.clear();
        self.halted_correct = 0;
        self.decided_correct = 0;
        self.script.clear();
        if self.net.n() == n {
            self.net.reset();
        } else {
            self.net = Network::new(n);
        }
        self.trace.reset(n, emulated_initial);
        self.scratch_pending.clear();
        self.scratch_pending.resize(n, 0);
        self.scratch_oldest_sent.clear();
        self.scratch_oldest_sent.resize(n, None);
        self.scratch_oldest_idx.clear();
        self.scratch_oldest_idx.resize(n, None);
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Current global time (time of the last executed step).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The failure pattern of the run.
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulation, returning its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The network state (pending messages).
    pub fn network(&self) -> &Network<A::Msg> {
        &self.net
    }

    /// Installs a link-fault plan on the network; subsequent sends consult
    /// it (see [`Network::send`]). Call before running — sends already in
    /// flight are unaffected. [`Simulation::reset`] uninstalls it.
    ///
    /// # Panics
    ///
    /// Panics if the plan's process count differs from the system size.
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) {
        self.net.set_link_faults(plan);
    }

    /// Builder form of [`Simulation::set_link_faults`].
    #[must_use]
    pub fn with_link_faults(mut self, plan: LinkFaultPlan) -> Self {
        self.set_link_faults(plan);
        self
    }

    /// Installs a message-mutation adversary on the network; subsequent
    /// sends consult its plan with `armor` deciding which attack classes
    /// the honest processes neutralize (see [`Network::set_adversary`]).
    /// Call before running. [`Simulation::reset`] uninstalls it.
    ///
    /// # Panics
    ///
    /// Panics if the plan's process count differs from the system size.
    pub fn set_adversary(&mut self, plan: AdversaryPlan, armor: Armor)
    where
        A::Msg: Corruptible,
    {
        self.net.set_adversary(plan, armor);
    }

    /// Builder form of [`Simulation::set_adversary`].
    #[must_use]
    pub fn with_adversary(mut self, plan: AdversaryPlan, armor: Armor) -> Self
    where
        A::Msg: Corruptible,
    {
        self.set_adversary(plan, armor);
        self
    }

    /// Uninstalls the mutation adversary, returning its plan and armor if
    /// one was installed. Queues and counters are untouched; terminal
    /// fingerprints taken afterwards use the adversary-free domain (the
    /// differential armor suite compares against baselines this way).
    pub fn take_adversary(&mut self) -> Option<(AdversaryPlan, Armor)> {
        self.net.take_adversary()
    }

    /// The [`RunOutcome`] network counters at the present moment.
    fn outcome(&self, steps: u64, reason: StopReason) -> RunOutcome {
        RunOutcome {
            steps,
            reason,
            sent: self.net.sent_count(),
            delivered: self.net.delivered_count(),
            dropped: self.net.dropped_count(),
            duplicated: self.net.duplicated_count(),
            mutated: self.net.mutated_count(),
            forged: self.net.forged_count(),
            armored: self.net.armored_count(),
            in_flight: self.net.in_flight() as u64,
        }
    }

    /// Immutable access to a process automaton (for state assertions in
    /// tests and adversaries).
    pub fn process(&self, p: ProcessId) -> &A {
        &self.procs[p.index()]
    }

    /// Processes that have halted.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessSet::MAX_PROCESSES`; large-`n` callers use
    /// [`Simulation::is_halted`] / [`Simulation::halted_count`].
    pub fn halted(&self) -> ProcessSet {
        self.halted.to_process_set()
    }

    /// Whether `p` has halted — O(1), any `n`.
    pub fn is_halted(&self, p: ProcessId) -> bool {
        self.halted.contains(p)
    }

    /// Number of halted processes — O(1), any `n`.
    pub fn halted_count(&self) -> usize {
        self.halted.len()
    }

    /// Whether every correct process has halted. O(1): maintained as a
    /// counter, since the failure pattern is immutable during a run.
    pub fn all_correct_halted(&self) -> bool {
        self.halted_correct == self.pattern.correct_count()
    }

    /// Whether every correct process has decided. O(1), any `n`.
    pub fn all_correct_decided(&self) -> bool {
        self.decided_correct == self.pattern.correct_count()
    }

    /// The sequence of choices executed so far — replaying it through
    /// [`ScriptedScheduler`](crate::ScriptedScheduler) on a fresh,
    /// identically-configured simulation reproduces this run exactly.
    pub fn script(&self) -> &[Choice] {
        &self.script
    }

    /// Turns choice-script recording on or off (on by default).
    ///
    /// A scale run at n = 10⁵ executes millions of steps whose script
    /// nobody replays; turning recording off caps the engine's memory at
    /// the live state instead of the run history. Replay-dependent
    /// workflows (counterexample shrinking, corpus capture) must leave it
    /// on. The setting survives [`Simulation::reset`].
    pub fn set_script_recording(&mut self, record: bool) {
        self.record_script = record;
    }

    /// Approximate heap footprint of the engine's live state in bytes:
    /// network queues + trace + script + halted set + scratch buffers.
    /// Used by the scale lab to report bytes/process; excludes the
    /// automata themselves (the caller knows its own state layout).
    pub fn harness_heap_bytes(&self) -> usize {
        self.net.heap_bytes()
            + self.trace.heap_bytes()
            + self.script.capacity() * std::mem::size_of::<Choice>()
            + self.halted.heap_bytes()
            + self.scratch_pending.capacity() * std::mem::size_of::<usize>()
            + self.scratch_oldest_sent.capacity() * std::mem::size_of::<Option<Time>>()
            + self.scratch_oldest_idx.capacity() * std::mem::size_of::<Option<usize>>()
    }

    /// The set of processes allowed to take the next step (alive at the
    /// next time and not halted) — the non-mutating core of
    /// [`Simulation::sched_state`]. Choice enumerators that must not
    /// touch the scratch buffers (the exhaustive explorer probes children
    /// off a shared `&Simulation`) combine this with
    /// [`Simulation::network`] instead of taking a full `SchedState`.
    pub fn schedulable_set(&self) -> ProcessSet {
        let next = self.now.next();
        let mut schedulable = ProcessSet::EMPTY;
        for i in 0..self.n() {
            let p = ProcessId(i as u32);
            if self.pattern.is_alive(p, next) && !self.halted.contains(p) {
                schedulable.insert(p);
            }
        }
        schedulable
    }

    /// The scheduler view for the next step.
    pub fn sched_state(&mut self) -> SchedState<'_> {
        let next = self.now.next();
        let mut schedulable = ProcessSet::EMPTY;
        // Starvation detection rides the same pass: the system is starved
        // when schedulable processes exist but every one is quiescent with
        // nothing pending — then no reachable step ever has an effect
        // (quiescence is forever, queues can only be filled by effects).
        let mut starved = true;
        for i in 0..self.n() {
            let p = ProcessId(i as u32);
            self.scratch_pending[i] = self.net.pending_count(p);
            self.scratch_oldest_sent[i] = self.net.oldest_sent_at(p);
            self.scratch_oldest_idx[i] = self.net.oldest_index(p);
            if self.pattern.is_alive(p, next) && !self.halted.contains(p) {
                schedulable.insert(p);
                starved = starved && self.scratch_pending[i] == 0 && self.procs[i].quiescent();
            }
        }
        SchedState {
            n: self.n(),
            next_time: next,
            schedulable_set: schedulable,
            halted: self.halted.to_process_set(),
            pending: &self.scratch_pending,
            oldest_sent: &self.scratch_oldest_sent,
            oldest_idx: &self.scratch_oldest_idx,
            starved: starved && !schedulable.is_empty(),
        }
    }

    /// Executes one atomic step, returning what it observably did.
    ///
    /// # Panics
    ///
    /// Panics if the choice is illegal: the process is crashed at the
    /// step's time, already halted, or the delivery index is out of
    /// range. (Adversary scripts are meant to be exact; an illegal choice
    /// is a construction bug, not a recoverable condition.)
    pub fn step<D: FailureDetector + ?Sized>(&mut self, choice: Choice, fd: &D) -> StepReport {
        let t = self.now.next();
        let p = choice.p;
        assert!(self.pattern.is_alive(p, t), "scheduled crashed process {p} at {t}");
        assert!(!self.halted.contains(p), "scheduled halted process {p}");

        let delivered = choice.deliver.map(|idx| {
            assert!(idx < self.net.pending_count(p), "delivery index {idx} out of range at {p}");
            self.net.deliver(p, idx)
        });

        let fd_out = fd.output(p, t);
        self.now = t;
        if self.record_script {
            self.script.push(choice);
        }
        self.trace.push_step(t, p, delivered.as_ref().map(|e| (e.from, e.id)), fd_out);

        // Reuse the scratch arena: the automaton fills the same Vecs every
        // step instead of allocating fresh ones.
        let mut eff = std::mem::replace(&mut self.scratch_eff, Effects::new());
        eff.clear();
        let input = StepInput { me: p, n: self.n(), now: t, delivered, fd: fd_out };
        self.procs[p.index()].step(input, &mut eff);

        let mut report = StepReport {
            decided: eff.decision.is_some(),
            emulated: eff.emulated.is_some(),
            ops: !eff.op_events.is_empty(),
            halted: false,
            sent: eff.send_count(),
        };
        for op in eff.sends.drain(..) {
            match op {
                SendOp::To(to, payload) => {
                    let id = self.net.send(p, to, t, payload);
                    self.trace.push_send(t, p, to, id);
                }
                SendOp::Fanout { n, except, payload } => {
                    let first = self.net.broadcast(p, t, payload, n, except);
                    self.trace.push_send_batch(t, p, n, except, first);
                }
            }
        }
        if let Some(v) = eff.decision.take() {
            let fresh = self.trace.push_decide(t, p, v);
            assert!(fresh, "{p} decided twice");
            if self.pattern.is_correct(p) {
                self.decided_correct += 1;
            }
        }
        if let Some(out) = eff.emulated.take() {
            self.trace.push_emulate(t, p, out);
        }
        for ev in eff.op_events.drain(..) {
            self.trace.push_op_event(t, p, ev);
        }
        if eff.halt || self.procs[p.index()].halted() {
            if self.halted.insert(p) && self.pattern.is_correct(p) {
                self.halted_correct += 1;
            }
            report.halted = true;
        }
        self.scratch_eff = eff;
        report
    }

    /// Runs under `sched` and `fd` until every correct process has
    /// halted, the scheduler gives up, or `max_steps` further steps have
    /// executed.
    pub fn run<S, D>(&mut self, sched: &mut S, fd: &D, max_steps: u64) -> RunOutcome
    where
        S: Scheduler + ?Sized,
        D: FailureDetector + ?Sized,
    {
        self.run_until(sched, fd, max_steps, |_| false)
    }

    /// Like [`Simulation::run`], but additionally stops (with
    /// [`StopReason::AllCorrectHalted`]) once `done` returns true.
    /// Useful for protocols whose automata never halt (emulations,
    /// replica servers) but whose interesting work has a detectable end.
    pub fn run_until<S, D, F>(
        &mut self,
        sched: &mut S,
        fd: &D,
        max_steps: u64,
        mut done: F,
    ) -> RunOutcome
    where
        S: Scheduler + ?Sized,
        D: FailureDetector + ?Sized,
        F: FnMut(&Simulation<A>) -> bool,
    {
        let mut steps = 0;
        loop {
            if self.all_correct_halted() || done(self) {
                return self.outcome(steps, StopReason::AllCorrectHalted);
            }
            if steps >= max_steps {
                return self.outcome(steps, StopReason::MaxSteps);
            }
            let view = self.sched_state();
            if view.starved() {
                return self.outcome(steps, StopReason::Starved);
            }
            let Some(choice) = sched.choose(&view) else {
                return self.outcome(steps, StopReason::SchedulerExhausted);
            };
            self.step(choice, fd);
            steps += 1;
        }
    }

    /// Runs a **message-driven** protocol to completion with an
    /// event-driven worklist instead of a per-step scheduler scan.
    ///
    /// [`Simulation::run_until`] pays O(n) per step (the scheduler view
    /// rebuilds pending counts for all n processes), which is O(n²) for a
    /// protocol whose work is O(n) steps — prohibitive at n = 10⁵. This
    /// runner keeps a FIFO worklist of processes that may have work:
    ///
    /// * every alive process is seeded once (its *kickoff* null step —
    ///   where quorum protocols broadcast their first request);
    /// * after that, a process re-enters the worklist only when a send
    ///   makes its queue non-empty (the network's wake log) or it still
    ///   has pending messages after its step.
    ///
    /// Each step delivers the process's oldest pending message (FIFO), or
    /// takes a null step for the kickoff. The schedule is a deterministic
    /// function of the run itself, so two runs of the same system produce
    /// identical traces regardless of host or thread count.
    ///
    /// **Soundness**: a process with an empty queue after its kickoff is
    /// stepped again only when a message arrives, so this runner is only
    /// complete for protocols whose automata are quiescent-unless-messaged
    /// after their first step (every fig2/fig4/ABD automaton in this repo
    /// is). Protocols that need spontaneous null steps must use
    /// [`Simulation::run`].
    ///
    /// Stops when `done` returns true or every correct process halted
    /// ([`StopReason::AllCorrectHalted`]), the budget runs out
    /// ([`StopReason::MaxSteps`]), or the worklist drains
    /// ([`StopReason::Starved`] — no reachable step has an effect).
    pub fn run_event_driven<D, F>(&mut self, fd: &D, max_steps: u64, mut done: F) -> RunOutcome
    where
        D: FailureDetector + ?Sized,
        F: FnMut(&Simulation<A>) -> bool,
    {
        let n = self.n();
        let mut worklist: VecDeque<ProcessId> = VecDeque::with_capacity(n);
        let mut queued = vec![false; n];
        for (i, q) in queued.iter_mut().enumerate() {
            let p = ProcessId(i as u32);
            if self.pattern.is_alive(p, self.now.next()) && !self.halted.contains(p) {
                worklist.push_back(p);
                *q = true;
            }
        }
        self.net.set_wake_tracking(true);
        let mut steps = 0;
        // Hoisted out of the loop: `correct_count()` scans the crash
        // vector (O(n)), and the pattern is immutable for the whole run.
        let correct_count = self.pattern.correct_count();
        let outcome = loop {
            if self.halted_correct == correct_count || done(self) {
                break self.outcome(steps, StopReason::AllCorrectHalted);
            }
            if steps >= max_steps {
                break self.outcome(steps, StopReason::MaxSteps);
            }
            let Some(p) = worklist.pop_front() else {
                break self.outcome(steps, StopReason::Starved);
            };
            queued[p.index()] = false;
            if self.halted.contains(p) || !self.pattern.is_alive(p, self.now.next()) {
                continue;
            }
            let deliver = (self.net.pending_count(p) > 0).then_some(0);
            self.step(Choice { p, deliver }, fd);
            steps += 1;
            self.net.drain_woken(|woken| {
                if !queued[woken.index()] {
                    queued[woken.index()] = true;
                    worklist.push_back(woken);
                }
            });
            if !self.halted.contains(p) && self.net.pending_count(p) > 0 && !queued[p.index()] {
                queued[p.index()] = true;
                worklist.push_back(p);
            }
        };
        self.net.set_wake_tracking(false);
        outcome
    }
}

impl<A: Automaton + fmt::Debug> Simulation<A> {
    /// A canonical 64-bit fingerprint of the **checker-visible** state.
    ///
    /// Two simulations with equal fingerprints are *check-equivalent*:
    /// every property checker that respects the checker-input contract
    /// (below) returns the same verdict on both, and their onward
    /// state spaces under the explorer's choice enumeration are
    /// isomorphic. The exhaustive explorer uses this to dedup revisited
    /// states (collisions of the 64-bit hash are possible in principle;
    /// see DESIGN.md for the trade-off discussion).
    ///
    /// **What is hashed** (via in-repo FNV-1a/64 — no `std` hashers, per
    /// the determinism contract):
    ///
    /// * the current time (`now`) and the halted set;
    /// * the failure pattern;
    /// * every automaton's state (canonical `Debug` encoding — derived
    ///   `Debug` is a pure function of field values);
    /// * each network queue as a **multiset** of `(from, payload)`
    ///   pairs plus its length, and the global sent/delivered counters;
    /// * the trace's checker inputs: decisions (with times), the
    ///   emulated failure-detector history, register-operation events,
    ///   per-process step counts and the sent-message count.
    ///
    /// **What is deliberately excluded** — harness metadata no checker
    /// may read: message ids and `sent_at` stamps (delivery-by-index
    /// enumeration never consults them), `Step`/`Send` trace events, and
    /// the choice script itself.
    ///
    /// **Checker-input contract**: an exploration `check` closure must be
    /// a pure function of the hashed projection above (equivalently: of
    /// what a [`TraceLevel::Light`] trace plus the live simulation state
    /// exposes, minus message ids and send stamps). Every checker in this
    /// repository reads only decisions, emulated histories, op records
    /// and automaton state, so they all qualify.
    ///
    /// Queues hash as multisets because two interleavings that send the
    /// same messages in different order produce arrival-permuted queues:
    /// the explorer enumerates deliveries in canonical *content* order
    /// (sorted by envelope fingerprint) and keys sleep sets by content,
    /// so permuted queues expand pairwise check-equivalent children with
    /// identical sleep contexts — merging the states is sound (even
    /// under a finite `max_deliveries` cap, whose menu is a
    /// content-order prefix) and is exactly what makes commuting-send
    /// diamonds collapse.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_impl(false)
    }

    /// Order-sensitive sibling of [`Simulation::fingerprint`]: identical
    /// except that each network queue is hashed as its exact
    /// arrival-order **sequence** of envelopes rather than a multiset.
    ///
    /// Equal ordered fingerprints mean the two states agree
    /// envelope-for-envelope per queue — strictly finer than the
    /// multiset view, at the price of *not* collapsing commuting-send
    /// diamonds whose queues are permutations of each other. The
    /// explorer's canonical content-ordered enumeration made the
    /// multiset hash sound for dedup everywhere, so this flavor is not
    /// on the dedup path; it remains the right key for callers that do
    /// distinguish arrival order (differential tooling, queue-order
    /// diagnostics).
    pub fn fingerprint_ordered(&self) -> u64 {
        self.fingerprint_impl(true)
    }

    fn fingerprint_impl(&self, ordered: bool) -> u64 {
        let mut h = Fnv64::new();
        h.write_u8(b'T');
        h.write_u64(self.now.0);
        h.write_u8(b'H');
        // Word 0 first, unconditionally, then any higher trimmed words:
        // for n ≤ 64 this hashes exactly the single u64 the ProcessSet
        // representation hashed, so fingerprints survive the migration.
        h.write_u64(self.halted.word(0));
        for &w in self.halted.words().iter().skip(1) {
            h.write_u64(w);
        }
        h.write_u8(b'F');
        h.write_usize(self.pattern.n());
        for p in (0..self.pattern.n() as u32).map(ProcessId) {
            match self.pattern.crash_time(p) {
                None => h.write_u8(0),
                Some(t) => {
                    h.write_u8(1);
                    h.write_u64(t.0);
                }
            }
        }
        for (i, a) in self.procs.iter().enumerate() {
            h.write_u8(b'P');
            h.write_usize(i);
            h.write_debug(a);
        }
        h.write_u8(b'N');
        if ordered {
            self.net.fingerprint_ordered_into(&mut h);
        } else {
            self.net.fingerprint_into(&mut h);
        }
        h.write_u8(b'R');
        self.trace.fingerprint_into(&mut h);
        h.finish()
    }
}

/// A reusable [`Simulation`] slot for sweep pipelines.
///
/// The first [`SimPool::acquire`] builds a simulation; every later one
/// rewinds it in place with [`Simulation::reset`], so network queues,
/// the trace event log and the scheduler scratch buffers are recycled
/// run over run instead of re-allocated. One pool per sweep worker.
#[derive(Debug, Default)]
pub struct SimPool<A: Automaton> {
    slot: Option<Simulation<A>>,
    level: TraceLevel,
}

impl<A: Automaton> SimPool<A> {
    /// An empty pool recording at [`TraceLevel::Full`].
    pub fn new() -> Self {
        SimPool { slot: None, level: TraceLevel::Full }
    }

    /// An empty pool recording at `level`.
    pub fn with_trace_level(level: TraceLevel) -> Self {
        SimPool { slot: None, level }
    }

    /// A simulation ready to run `procs` under `pattern`, recycled from
    /// the previous run where possible.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len() != pattern.n()`.
    pub fn acquire(&mut self, procs: Vec<A>, pattern: &FailurePattern) -> &mut Simulation<A> {
        self.acquire_with_emulated_initial(procs, pattern, FdOutput::Bot)
    }

    /// [`SimPool::acquire`] with an explicit initial emulated output.
    pub fn acquire_with_emulated_initial(
        &mut self,
        procs: Vec<A>,
        pattern: &FailurePattern,
        emulated_initial: FdOutput,
    ) -> &mut Simulation<A> {
        match &mut self.slot {
            Some(sim) => sim.reset_with_emulated_initial(procs, pattern, emulated_initial),
            slot @ None => {
                *slot = Some(
                    Simulation::with_emulated_initial(procs, pattern.clone(), emulated_initial)
                        .with_trace_level(self.level),
                );
            }
        }
        self.slot.as_mut().expect("invariant: both match arms above leave the slot occupied")
    }

    /// Takes the pooled simulation's trace, leaving the pool empty (for
    /// one-shot wrappers that must return an owned [`Trace`]).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.slot.take().map(Simulation::into_trace)
    }
}
