//! Mutation engine of the coverage-guided schedule fuzzer ("VOPR mode").
//!
//! A fuzzer input is a whole [`Schedule`]: the choice script plus its
//! fault environment (crash pattern, link-fault windows, adversary plan,
//! scripted attack, armor rung). Every operator here is **closed over
//! the v1/v2 schedule grammar**: a mutant is built exclusively through
//! the same window/pattern builders the parser uses, so it always
//! serializes with [`Schedule::to_text`] and parses back to an equal
//! value — the property `tests/fuzz.rs` pins for every operator against
//! every committed corpus entry.
//!
//! The **version invariant** is enforced structurally: the operators
//! that can introduce adversary state (and thereby promote a v1
//! schedule to the v2 grammar) are gated behind
//! [`MutatorConfig::allow_adversary`], which the lab driver sets iff the
//! schedule's workload honors adversary fields (`BYZ_WORKLOADS`). A v1
//! schedule mutated with the gate closed stays adversary-free; with the
//! gate open any promotion is explicit (the operator says `adversary` in
//! its name) — never an invalid hybrid.
//!
//! Everything in this module is deterministic: the only randomness is
//! the caller-supplied [`FuzzRng`] (splitmix64, the same generator
//! `AdversaryPlan::random_plan` uses), and the coverage map and corpus
//! use ordered containers only, per the determinism contract
//! (DESIGN.md §6).

use crate::repro::{
    adversary_from_windows, crash_list, pattern_from_crashes, plan_from_windows, Schedule,
};
use crate::scheduler::Choice;
use crate::Fnv64;
use sih_model::{
    Armor, AttackKind, AttackSpec, LinkFault, LinkFaultWindow, MutationKind, MutationWindow,
    ProcessId, Time,
};
use std::collections::BTreeSet;

/// A small, fast, seedable generator for mutation decisions — splitmix64,
/// the same finalizer [`sih_model::AdversaryPlan::random_plan`] uses, so
/// fuzzing runs stay deterministic without dragging a full RNG crate into
/// the runtime.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A Bernoulli draw: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den.max(1)) < num
    }
}

/// Bounds and gates of the mutation operators for one parent schedule.
#[derive(Clone, Copy, Debug)]
pub struct MutatorConfig {
    /// Whether operators may touch the adversary fields (mutation
    /// windows, attack line, armor rung). The lab driver opens this gate
    /// only for workloads that honor adversary fields; with it closed,
    /// adversary operators return `None` and a v1 parent can never be
    /// promoted to v2.
    pub allow_adversary: bool,
    /// Time horizon for window starts/ends and crash times (typically
    /// the parent's `max_steps`).
    pub horizon: u64,
    /// Hard cap on a mutant's choice count (duplication/crossover clamp
    /// to this).
    pub max_choices: usize,
}

impl MutatorConfig {
    /// The default bounds for mutating `s`.
    pub fn for_schedule(s: &Schedule, allow_adversary: bool) -> Self {
        MutatorConfig {
            allow_adversary,
            horizon: s.max_steps.max(16),
            max_choices: (s.choices.len().saturating_mul(4)).clamp(64, 4096),
        }
    }
}

/// The mutation operator alphabet. Every operator maps a parsing
/// schedule to a parsing schedule (or declines with `None` when it does
/// not apply — e.g. no window to shift, or the adversary gate is
/// closed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MutOp {
    /// Cut a run of choices and re-insert it at another position.
    SpliceChoices,
    /// Keep only a prefix of the choice script.
    TruncateChoices,
    /// Duplicate a short run of choices in place.
    DuplicateRun,
    /// Translate one link-fault window in time (span preserved).
    ShiftFaultWindow,
    /// Re-bound or unbound one link-fault window, or re-draw its send
    /// selector.
    ResizeFaultWindow,
    /// Add a fresh random link-fault window.
    AddFaultWindow,
    /// Remove one link-fault window.
    DropFaultWindow,
    /// Add, remove, or re-time a crash in the failure pattern.
    PerturbCrash,
    /// Translate one adversary mutation window in time (gated).
    ShiftAdversaryWindow,
    /// Re-bound or unbound one adversary mutation window, or re-draw its
    /// selector (gated).
    ResizeAdversaryWindow,
    /// Add a fresh random adversary mutation window (gated).
    AddAdversaryWindow,
    /// Remove one adversary mutation window (gated).
    DropAdversaryWindow,
    /// Move the armor rung somewhere else on the ladder (gated).
    FlipArmor,
    /// Toggle or re-parameterize the scripted attack line (gated).
    FlipAttack,
}

impl MutOp {
    /// Every operator, in canonical order.
    pub const ALL: [MutOp; 14] = [
        MutOp::SpliceChoices,
        MutOp::TruncateChoices,
        MutOp::DuplicateRun,
        MutOp::ShiftFaultWindow,
        MutOp::ResizeFaultWindow,
        MutOp::AddFaultWindow,
        MutOp::DropFaultWindow,
        MutOp::PerturbCrash,
        MutOp::ShiftAdversaryWindow,
        MutOp::ResizeAdversaryWindow,
        MutOp::AddAdversaryWindow,
        MutOp::DropAdversaryWindow,
        MutOp::FlipArmor,
        MutOp::FlipAttack,
    ];

    /// Stable display name (for swarm logs and reports).
    pub fn name(self) -> &'static str {
        match self {
            MutOp::SpliceChoices => "splice-choices",
            MutOp::TruncateChoices => "truncate-choices",
            MutOp::DuplicateRun => "duplicate-run",
            MutOp::ShiftFaultWindow => "shift-fault-window",
            MutOp::ResizeFaultWindow => "resize-fault-window",
            MutOp::AddFaultWindow => "add-fault-window",
            MutOp::DropFaultWindow => "drop-fault-window",
            MutOp::PerturbCrash => "perturb-crash",
            MutOp::ShiftAdversaryWindow => "shift-adversary-window",
            MutOp::ResizeAdversaryWindow => "resize-adversary-window",
            MutOp::AddAdversaryWindow => "add-adversary-window",
            MutOp::DropAdversaryWindow => "drop-adversary-window",
            MutOp::FlipArmor => "flip-armor",
            MutOp::FlipAttack => "flip-attack",
        }
    }

    /// Whether the operator touches adversary fields — the only
    /// operators that may promote a v1 schedule to the v2 grammar.
    pub fn is_adversary(self) -> bool {
        matches!(
            self,
            MutOp::ShiftAdversaryWindow
                | MutOp::ResizeAdversaryWindow
                | MutOp::AddAdversaryWindow
                | MutOp::DropAdversaryWindow
                | MutOp::FlipArmor
                | MutOp::FlipAttack
        )
    }
}

/// Applies `op` to `s`, returning the mutant, or `None` when the
/// operator does not apply (empty target list, closed adversary gate,
/// or a guard that keeps the mutant well-formed).
///
/// Mutants keep the parent's `checker`, `n`, `k`, `seed` and
/// `max_steps`; environment mutations rebuild plans through the same
/// builders the parser uses, so every mutant round-trips through
/// [`Schedule::to_text`] exactly.
pub fn mutate(s: &Schedule, op: MutOp, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    if op.is_adversary() && !cfg.allow_adversary {
        return None;
    }
    match op {
        MutOp::SpliceChoices => splice_choices(s, rng),
        MutOp::TruncateChoices => truncate_choices(s, rng),
        MutOp::DuplicateRun => duplicate_run(s, cfg, rng),
        MutOp::ShiftFaultWindow => shift_fault_window(s, cfg, rng),
        MutOp::ResizeFaultWindow => resize_fault_window(s, cfg, rng),
        MutOp::AddFaultWindow => add_fault_window(s, cfg, rng),
        MutOp::DropFaultWindow => drop_fault_window(s, rng),
        MutOp::PerturbCrash => perturb_crash(s, cfg, rng),
        MutOp::ShiftAdversaryWindow => shift_adversary_window(s, cfg, rng),
        MutOp::ResizeAdversaryWindow => resize_adversary_window(s, cfg, rng),
        MutOp::AddAdversaryWindow => add_adversary_window(s, cfg, rng),
        MutOp::DropAdversaryWindow => drop_adversary_window(s, rng),
        MutOp::FlipArmor => flip_armor(s, rng),
        MutOp::FlipAttack => flip_attack(s, rng),
    }
}

/// One-point crossover between two corpus parents: `a`'s choice prefix
/// spliced onto `b`'s suffix, with each environment component (pattern,
/// fault plan, adversary bundle, seed) inherited from one parent or the
/// other. Only defined for parents of the same workload shape
/// (`checker`, `n`, `k`), so every inherited component is legal in the
/// child.
pub fn crossover(
    a: &Schedule,
    b: &Schedule,
    cfg: &MutatorConfig,
    rng: &mut FuzzRng,
) -> Option<Schedule> {
    if a.checker != b.checker || a.n != b.n || a.k != b.k {
        return None;
    }
    let cut_a = rng.below(a.choices.len() as u64 + 1) as usize;
    let cut_b = rng.below(b.choices.len() as u64 + 1) as usize;
    let mut choices: Vec<Choice> = Vec::with_capacity(cut_a + b.choices.len() - cut_b);
    choices.extend_from_slice(&a.choices[..cut_a]);
    choices.extend_from_slice(&b.choices[cut_b..]);
    if choices.is_empty() {
        return None;
    }
    choices.truncate(cfg.max_choices);
    let mut child = a.clone();
    child.choices = choices;
    if rng.chance(1, 2) {
        child.pattern = b.pattern.clone();
    }
    if rng.chance(1, 2) {
        child.faults = b.faults.clone();
    }
    if rng.chance(1, 2) {
        child.adversary = b.adversary.clone();
        child.attack = b.attack;
        child.armor = b.armor;
    }
    if rng.chance(1, 2) {
        child.seed = b.seed;
    }
    child.max_steps = a.max_steps.max(b.max_steps);
    Some(child)
}

// ---- choice-script operators --------------------------------------------

fn splice_choices(s: &Schedule, rng: &mut FuzzRng) -> Option<Schedule> {
    let len = s.choices.len();
    if len < 2 {
        return None;
    }
    let start = rng.below(len as u64) as usize;
    let run = 1 + rng.below((len - start).min(8) as u64) as usize;
    let mut choices = s.choices.clone();
    let cut: Vec<Choice> = choices.drain(start..start + run).collect();
    let at = rng.below(choices.len() as u64 + 1) as usize;
    choices.splice(at..at, cut);
    Some(Schedule { choices, ..s.clone() })
}

fn truncate_choices(s: &Schedule, rng: &mut FuzzRng) -> Option<Schedule> {
    let len = s.choices.len();
    if len < 2 {
        return None;
    }
    let keep = 1 + rng.below(len as u64 - 1) as usize;
    let mut choices = s.choices.clone();
    choices.truncate(keep);
    Some(Schedule { choices, ..s.clone() })
}

fn duplicate_run(s: &Schedule, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    let len = s.choices.len();
    if len == 0 || len >= cfg.max_choices {
        return None;
    }
    let start = rng.below(len as u64) as usize;
    let run = 1 + rng.below((len - start).min(8) as u64) as usize;
    let seg: Vec<Choice> = s.choices[start..start + run].to_vec();
    let mut choices = s.choices.clone();
    choices.splice(start + run..start + run, seg);
    choices.truncate(cfg.max_choices);
    Some(Schedule { choices, ..s.clone() })
}

// ---- link-fault operators ------------------------------------------------

/// A signed time delta up to ±`horizon / 4`, never zero.
fn time_delta(cfg: &MutatorConfig, rng: &mut FuzzRng) -> i64 {
    let mag = 1 + rng.below(cfg.horizon / 4 + 1) as i64;
    if rng.chance(1, 2) {
        mag
    } else {
        -mag
    }
}

/// A fresh window end: `None` (permanent) one time in four, else a bound
/// strictly above `from` within the horizon.
fn random_until(from: u64, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Time> {
    if rng.chance(1, 4) {
        None
    } else {
        Some(Time(from + 1 + rng.below(cfg.horizon)))
    }
}

fn shift_fault_window(s: &Schedule, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    let mut ws = s.faults.windows().to_vec();
    if ws.is_empty() {
        return None;
    }
    let i = rng.below(ws.len() as u64) as usize;
    let delta = time_delta(cfg, rng);
    ws[i] = ws[i].shifted(delta);
    Some(Schedule { faults: plan_from_windows(s.n, &ws), ..s.clone() })
}

fn resize_fault_window(s: &Schedule, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    let mut ws = s.faults.windows().to_vec();
    if ws.is_empty() {
        return None;
    }
    let i = rng.below(ws.len() as u64) as usize;
    if rng.chance(1, 3) {
        let stride = 1 + rng.below(4);
        let offset = rng.below(stride);
        ws[i] = ws[i].with_selector(stride, offset);
    } else {
        let until = random_until(ws[i].from.0, cfg, rng);
        ws[i] = ws[i].resized(until);
    }
    Some(Schedule { faults: plan_from_windows(s.n, &ws), ..s.clone() })
}

fn add_fault_window(s: &Schedule, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    if s.n < 2 || s.faults.windows().len() >= 8 {
        return None;
    }
    let src = ProcessId(rng.below(s.n as u64) as u32);
    let mut dst = ProcessId(rng.below(s.n as u64) as u32);
    if dst == src {
        dst = ProcessId((dst.0 + 1) % s.n as u32);
    }
    let stride = 1 + rng.below(4);
    let offset = rng.below(stride);
    let from = Time(rng.below(cfg.horizon));
    let until = random_until(from.0, cfg, rng);
    let fault = if rng.chance(1, 2) {
        LinkFault::Drop { stride, offset }
    } else {
        LinkFault::Duplicate { stride, offset }
    };
    let mut ws = s.faults.windows().to_vec();
    ws.push(LinkFaultWindow { src, dst, fault, from, until });
    Some(Schedule { faults: plan_from_windows(s.n, &ws), ..s.clone() })
}

fn drop_fault_window(s: &Schedule, rng: &mut FuzzRng) -> Option<Schedule> {
    let mut ws = s.faults.windows().to_vec();
    if ws.is_empty() {
        return None;
    }
    let i = rng.below(ws.len() as u64) as usize;
    ws.remove(i);
    Some(Schedule { faults: plan_from_windows(s.n, &ws), ..s.clone() })
}

// ---- crash-pattern operator ---------------------------------------------

fn perturb_crash(s: &Schedule, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    let crashes = crash_list(&s.pattern);
    match rng.below(3) {
        // Crash a currently-correct process (from the start one time in
        // four, else mid-run within the horizon).
        0 => {
            let correct: Vec<ProcessId> = (0..s.n as u32)
                .map(ProcessId)
                .filter(|p| !crashes.iter().any(|&(q, _)| q == *p))
                .collect();
            if correct.len() <= 1 {
                return None; // keep at least one correct process
            }
            let p = correct[rng.below(correct.len() as u64) as usize];
            let t = if rng.chance(1, 4) { None } else { Some(Time(1 + rng.below(cfg.horizon))) };
            let mut next = crashes;
            next.push((p, t));
            Some(Schedule { pattern: pattern_from_crashes(s.n, &next), ..s.clone() })
        }
        // Un-crash one crashed process.
        1 => {
            if crashes.is_empty() {
                return None;
            }
            let mut next = crashes;
            next.remove(rng.below(next.len() as u64) as usize);
            Some(Schedule { pattern: pattern_from_crashes(s.n, &next), ..s.clone() })
        }
        // Re-draw the crash time of one mid-run crash.
        _ => {
            let timed: Vec<usize> =
                crashes.iter().enumerate().filter_map(|(i, &(_, t))| t.map(|_| i)).collect();
            if timed.is_empty() {
                return None;
            }
            let i = timed[rng.below(timed.len() as u64) as usize];
            let mut next = crashes;
            next[i].1 = Some(Time(1 + rng.below(cfg.horizon)));
            Some(Schedule { pattern: pattern_from_crashes(s.n, &next), ..s.clone() })
        }
    }
}

// ---- adversary operators (gated) ----------------------------------------

fn shift_adversary_window(
    s: &Schedule,
    cfg: &MutatorConfig,
    rng: &mut FuzzRng,
) -> Option<Schedule> {
    let mut ws = s.adversary.windows().to_vec();
    if ws.is_empty() {
        return None;
    }
    let i = rng.below(ws.len() as u64) as usize;
    let delta = time_delta(cfg, rng);
    ws[i] = ws[i].shifted(delta);
    Some(Schedule { adversary: adversary_from_windows(s.n, &ws), ..s.clone() })
}

fn resize_adversary_window(
    s: &Schedule,
    cfg: &MutatorConfig,
    rng: &mut FuzzRng,
) -> Option<Schedule> {
    let mut ws = s.adversary.windows().to_vec();
    if ws.is_empty() {
        return None;
    }
    let i = rng.below(ws.len() as u64) as usize;
    if rng.chance(1, 3) {
        let stride = 1 + rng.below(4);
        let offset = rng.below(stride);
        ws[i] = ws[i].with_selector(stride, offset);
    } else {
        let until = random_until(ws[i].from.0, cfg, rng);
        ws[i] = ws[i].resized(until);
    }
    Some(Schedule { adversary: adversary_from_windows(s.n, &ws), ..s.clone() })
}

fn add_adversary_window(s: &Schedule, cfg: &MutatorConfig, rng: &mut FuzzRng) -> Option<Schedule> {
    if s.n < 2 || s.adversary.windows().len() >= 8 {
        return None;
    }
    let src = ProcessId(rng.below(s.n as u64) as u32);
    let mut dst = ProcessId(rng.below(s.n as u64) as u32);
    if dst == src {
        dst = ProcessId((dst.0 + 1) % s.n as u32);
    }
    let stride = 1 + rng.below(4);
    let from = Time(rng.below(cfg.horizon));
    let w = MutationWindow {
        src,
        dst,
        kind: MutationKind::ALL[rng.below(MutationKind::ALL.len() as u64) as usize],
        x: 1 + rng.below(100),
        stride,
        offset: rng.below(stride),
        from,
        until: random_until(from.0, cfg, rng),
    };
    let mut ws = s.adversary.windows().to_vec();
    ws.push(w);
    Some(Schedule { adversary: adversary_from_windows(s.n, &ws), ..s.clone() })
}

fn drop_adversary_window(s: &Schedule, rng: &mut FuzzRng) -> Option<Schedule> {
    let mut ws = s.adversary.windows().to_vec();
    if ws.is_empty() {
        return None;
    }
    let i = rng.below(ws.len() as u64) as usize;
    ws.remove(i);
    Some(Schedule { adversary: adversary_from_windows(s.n, &ws), ..s.clone() })
}

fn flip_armor(s: &Schedule, rng: &mut FuzzRng) -> Option<Schedule> {
    let ladder = Armor::LADDER.len() as u64;
    let mut rung = rng.below(ladder) as u8;
    if rung == s.armor.rung() {
        rung = (rung + 1) % ladder as u8;
    }
    Some(Schedule { armor: Armor::level(rung), ..s.clone() })
}

fn flip_attack(s: &Schedule, rng: &mut FuzzRng) -> Option<Schedule> {
    let attack = match s.attack {
        None => Some(AttackSpec {
            kind: AttackKind::ALL[rng.below(AttackKind::ALL.len() as u64) as usize],
            x: 1 + rng.below(100),
        }),
        Some(_) => {
            if rng.chance(1, 2) {
                None
            } else {
                Some(AttackSpec {
                    kind: AttackKind::ALL[rng.below(AttackKind::ALL.len() as u64) as usize],
                    x: 1 + rng.below(100),
                })
            }
        }
    };
    if attack == s.attack {
        return None;
    }
    Some(Schedule { attack, ..s.clone() })
}

// ---- coverage map --------------------------------------------------------

/// The fuzzer's coverage map: the set of distinct per-step state
/// fingerprints (the explorer's FNV-1a/64 fingerprints, mixed with a
/// workload key by the driver) any evaluated schedule has ever visited.
/// Ordered container, so merging observations in canonical order is
/// bitwise identical across thread counts.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    seen: BTreeSet<u64>,
}

impl Coverage {
    /// An empty map.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Records `keys`, returning how many were novel.
    pub fn observe(&mut self, keys: impl IntoIterator<Item = u64>) -> u64 {
        let mut novel = 0;
        for k in keys {
            if self.seen.insert(k) {
                novel += 1;
            }
        }
        novel
    }

    /// Distinct fingerprints observed so far.
    pub fn len(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// One live-corpus entry with its power-schedule energy.
#[derive(Clone, Debug)]
pub struct PowerEntry {
    /// The kept schedule (canonicalized by the driver so it
    /// strict-replays).
    pub schedule: Schedule,
    /// Selection weight: seeded from the novelty the entry brought in,
    /// boosted when its children find more, decayed as it is picked.
    pub energy: u32,
}

/// The live corpus with its deterministic power schedule.
///
/// Selection is energy-weighted: an entry's energy starts at a base plus
/// the novelty it contributed, gains a bonus each time one of its
/// mutants is kept (recent-novelty feedback), and decays by one per
/// selection (floor 1), so stale parents gradually lose the race.
/// Everything is integer arithmetic over a `Vec` in insertion order plus
/// the caller's [`FuzzRng`] — no wall clock, no hash containers — so
/// corpus evolution is identical across thread counts.
#[derive(Clone, Debug, Default)]
pub struct FuzzCorpus {
    entries: Vec<PowerEntry>,
    digests: BTreeSet<u64>,
}

/// Base selection energy of a fresh corpus entry.
const BASE_ENERGY: u32 = 8;
/// Cap on any entry's energy.
const MAX_ENERGY: u32 = 64;
/// Energy bonus a parent earns when a child of its is kept.
const PARENT_BONUS: u32 = 4;

impl FuzzCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        FuzzCorpus::default()
    }

    /// Adds `s` (deduplicated by [`Schedule::digest`]); `novelty` is the
    /// number of new coverage keys it contributed. Returns the entry's
    /// index, or `None` if it was a duplicate.
    pub fn push(&mut self, s: Schedule, novelty: u64) -> Option<usize> {
        if !self.digests.insert(s.digest()) {
            return None;
        }
        let energy = (BASE_ENERGY + (novelty.min(24) as u32)).min(MAX_ENERGY);
        self.entries.push(PowerEntry { schedule: s, energy });
        Some(self.entries.len() - 1)
    }

    /// Credits `idx` for a kept child (recent-novelty feedback).
    pub fn reward(&mut self, idx: usize) {
        if let Some(e) = self.entries.get_mut(idx) {
            e.energy = (e.energy + PARENT_BONUS).min(MAX_ENERGY);
        }
    }

    /// Picks a parent index, energy-weighted, and decays its energy.
    pub fn pick(&mut self, rng: &mut FuzzRng) -> Option<usize> {
        let total: u64 = self.entries.iter().map(|e| e.energy as u64).sum();
        if total == 0 {
            return None;
        }
        let mut r = rng.below(total);
        for (i, e) in self.entries.iter_mut().enumerate() {
            let w = e.energy as u64;
            if r < w {
                e.energy = (e.energy - 1).max(1);
                return Some(i);
            }
            r -= w;
        }
        None
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[PowerEntry] {
        &self.entries
    }

    /// Number of kept schedules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A canonical digest of the corpus *contents* (selection state
    /// excluded): FNV-1a/64 over the sorted entry digests. Equal across
    /// thread counts iff the kept schedules are equal.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for d in &self.digests {
            h.write_u64(*d);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sih_model::{AdversaryPlan, FailurePattern, LinkFaultPlan};

    fn base() -> Schedule {
        Schedule {
            checker: "fig2-weak-sigma".to_string(),
            n: 3,
            k: 1,
            seed: 2,
            max_steps: 64,
            pattern: FailurePattern::all_correct(3),
            faults: LinkFaultPlan::builder(3)
                .drop_link(ProcessId(0), ProcessId(1), Time(0), Some(Time(32)))
                .build(),
            adversary: AdversaryPlan::honest(3),
            attack: None,
            armor: Armor::NONE,
            choices: (0..6).map(|i| Choice { p: ProcessId(i % 3), deliver: None }).collect(),
            verdict: "panic".to_string(),
        }
    }

    #[test]
    fn every_operator_yields_a_roundtripping_mutant_or_declines() {
        let s = base();
        for allow in [false, true] {
            let cfg = MutatorConfig::for_schedule(&s, allow);
            for op in MutOp::ALL {
                for seed in 0..32 {
                    let mut rng = FuzzRng::new(seed);
                    let Some(m) = mutate(&s, op, &cfg, &mut rng) else { continue };
                    let text = m.to_text();
                    let back = Schedule::parse(&text)
                        .unwrap_or_else(|e| panic!("{}: {e}\n{text}", op.name()));
                    assert_eq!(back, m, "{} round-trip", op.name());
                    if !op.is_adversary() {
                        assert!(m.adversary_free(), "{} promoted v1", op.name());
                    }
                }
            }
        }
    }

    #[test]
    fn adversary_operators_are_gated() {
        let s = base();
        let cfg = MutatorConfig::for_schedule(&s, false);
        let mut rng = FuzzRng::new(7);
        for op in MutOp::ALL.into_iter().filter(|op| op.is_adversary()) {
            assert!(mutate(&s, op, &cfg, &mut rng).is_none(), "{}", op.name());
        }
    }

    #[test]
    fn crossover_requires_matching_shape_and_is_nonempty() {
        let a = base();
        let mut b = base();
        b.seed = 9;
        b.choices.truncate(3);
        let cfg = MutatorConfig::for_schedule(&a, false);
        let mut rng = FuzzRng::new(3);
        let child = crossover(&a, &b, &cfg, &mut rng).expect("same shape crosses over");
        assert!(!child.choices.is_empty());
        assert_eq!(Schedule::parse(&child.to_text()).unwrap(), child);
        let mut other = base();
        other.checker = "abd-weak-quorum".to_string();
        assert!(crossover(&a, &other, &cfg, &mut rng).is_none());
    }

    #[test]
    fn corpus_power_schedule_is_deterministic_and_dedups() {
        let run = || {
            let mut c = FuzzCorpus::new();
            let mut rng = FuzzRng::new(11);
            let mut s = base();
            assert!(c.push(s.clone(), 5).is_some());
            assert!(c.push(s.clone(), 5).is_none(), "duplicate kept");
            s.seed = 42;
            assert!(c.push(s.clone(), 0).is_some());
            c.reward(0);
            (0..16).filter_map(|_| c.pick(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn coverage_counts_novelty_once() {
        let mut cov = Coverage::new();
        assert_eq!(cov.observe([1, 2, 2, 3]), 3);
        assert_eq!(cov.observe([2, 3, 4]), 1);
        assert_eq!(cov.len(), 4);
    }
}
