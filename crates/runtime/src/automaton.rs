//! The deterministic process automaton interface.
//!
//! A distributed algorithm in the paper's model (§2.1) is a collection of
//! `n` deterministic automata, one per process. In each step a process
//! atomically: (1) receives a message (or a null message), (2) queries its
//! failure detector, and (3) changes state and sends messages. The
//! [`Automaton`] trait is that step function; [`StepInput`] carries (1) and
//! (2); [`Effects`] collects (3) plus the observable actions the harness
//! cares about (decisions, emulated failure-detector outputs, register
//! operation events, halting).

use sih_model::{FdOutput, OpId, OpKind, ProcessId, Time, Value};

/// Unique identifier of a message within a run (assigned at send time, in
/// send order — deterministic, so replays produce identical ids).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MsgId(pub u64);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message in flight or being delivered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Unique id of the message within the run.
    pub id: MsgId,
    /// The sender.
    pub from: ProcessId,
    /// The destination.
    pub to: ProcessId,
    /// The time of the sending step.
    pub sent_at: Time,
    /// The protocol payload.
    pub payload: M,
}

/// Everything a process observes in one atomic step.
#[derive(Clone, Debug)]
pub struct StepInput<M> {
    /// The stepping process's own identity.
    pub me: ProcessId,
    /// System size `n` (processes know `Π`).
    pub n: usize,
    /// The global time of this step. **Algorithms must not branch on
    /// this** — the global clock is not accessible to processes in the
    /// model; it is included for trace annotations only (register
    /// emulations use it to tag operation records, which is metadata, not
    /// protocol state).
    pub now: Time,
    /// The delivered message, if the scheduler chose to deliver one
    /// (the paper's "receives a message from some process or a null
    /// message").
    pub delivered: Option<Envelope<M>>,
    /// The failure-detector output `H(p, t)` for this step (the paper's
    /// "queries and receives a value from its failure detector module").
    pub fd: FdOutput,
}

/// The actions a process takes in one atomic step.
///
/// Obtained empty by the engine, filled by [`Automaton::step`], and then
/// applied atomically: sends enter the network, a decision/emulated output
/// is recorded in the trace, and `halt` stops the process for good (the
/// pseudocode's `return`).
#[derive(Clone, Debug, Default)]
pub struct Effects<M> {
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) decision: Option<Value>,
    pub(crate) emulated: Option<FdOutput>,
    pub(crate) op_events: Vec<OpEvent>,
    pub(crate) halt: bool,
}

/// A register-operation boundary event emitted by a register client or
/// emulation (consumed by the linearizability checker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpEvent {
    /// An operation was invoked.
    Invoke {
        /// Operation id (unique per run, chosen by the emitter).
        id: OpId,
        /// Read or write.
        kind: OpKind,
    },
    /// An operation returned.
    Return {
        /// Operation id matching the invocation.
        id: OpId,
        /// Read or write.
        kind: OpKind,
        /// For reads, the value returned (`None` = register's initial ⊥).
        read_value: Option<Value>,
    },
}

impl<M> Effects<M> {
    /// A fresh, empty effect set.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            decision: None,
            emulated: None,
            op_events: Vec::new(),
            halt: false,
        }
    }

    /// Sends `payload` to process `to` (may be the sender itself).
    pub fn send(&mut self, to: ProcessId, payload: M) {
        self.sends.push((to, payload));
    }

    /// Sends a copy of `payload` to every process in `Π`, including the
    /// sender (the pseudocode's "send to all").
    pub fn send_all(&mut self, n: usize, payload: M)
    where
        M: Clone,
    {
        for i in 0..n as u32 {
            self.sends.push((ProcessId(i), payload.clone()));
        }
    }

    /// Sends a copy of `payload` to every process except `me` (the
    /// pseudocode's "send to every process except p", Figure 2 line 17).
    pub fn send_others(&mut self, n: usize, me: ProcessId, payload: M)
    where
        M: Clone,
    {
        for i in 0..n as u32 {
            if ProcessId(i) != me {
                self.sends.push((ProcessId(i), payload.clone()));
            }
        }
    }

    /// Records the decision of this process (at most one per run).
    ///
    /// # Panics
    ///
    /// Panics if called twice within one step; the engine additionally
    /// rejects a second decision across steps.
    pub fn decide(&mut self, v: Value) {
        assert!(self.decision.is_none(), "decide called twice in one step");
        self.decision = Some(v);
    }

    /// Publishes the current emulated failure-detector output (the
    /// `output ← …` assignments of Figures 3, 5 and 6).
    pub fn set_output(&mut self, out: FdOutput) {
        self.emulated = Some(out);
    }

    /// Records a register-operation invocation event.
    pub fn op_invoke(&mut self, id: OpId, kind: OpKind) {
        self.op_events.push(OpEvent::Invoke { id, kind });
    }

    /// Records a register-operation response event.
    pub fn op_return(&mut self, id: OpId, kind: OpKind, read_value: Option<Value>) {
        self.op_events.push(OpEvent::Return { id, kind, read_value });
    }

    /// Stops this process for good (the pseudocode's `return`): the
    /// scheduler will never step it again.
    pub fn halt(&mut self) {
        self.halt = true;
    }

    /// The sends queued so far (read access, e.g. for wrapper automata
    /// and tests).
    pub fn sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }

    /// The decision recorded this step, if any.
    pub fn decision(&self) -> Option<Value> {
        self.decision
    }

    /// The emulated failure-detector output published this step, if any.
    pub fn emulated(&self) -> Option<FdOutput> {
        self.emulated
    }

    /// The register-operation events recorded this step.
    pub fn op_events(&self) -> &[OpEvent] {
        &self.op_events
    }

    /// Whether the process requested to halt this step.
    pub fn halt_requested(&self) -> bool {
        self.halt
    }

    /// Drains all queued sends, leaving the list empty — for wrapper
    /// automata (e.g. the Theorem 13 simulation) that translate and
    /// re-emit an inner automaton's effects.
    pub fn take_sends(&mut self) -> Vec<(ProcessId, M)> {
        std::mem::take(&mut self.sends)
    }

    /// Takes the recorded decision, leaving none.
    pub fn take_decision(&mut self) -> Option<Value> {
        self.decision.take()
    }

    /// Takes the published emulated output, leaving none.
    pub fn take_emulated(&mut self) -> Option<FdOutput> {
        self.emulated.take()
    }

    /// Drains the recorded operation events.
    pub fn take_op_events(&mut self) -> Vec<OpEvent> {
        std::mem::take(&mut self.op_events)
    }

    /// Whether no effect was produced (useful in tests).
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.decision.is_none()
            && self.emulated.is_none()
            && self.op_events.is_empty()
            && !self.halt
    }
}

/// A deterministic process automaton — one of the `n` automata making up a
/// distributed algorithm.
///
/// Determinism is load-bearing: the indistinguishability arguments of
/// Lemmas 7, 11 and 15 replay run prefixes and rely on identical behaviour
/// given identical inputs. Implementations must not use interior
/// randomness or wall-clock state; all nondeterminism lives in the
/// scheduler and the failure-detector history.
pub trait Automaton {
    /// The protocol message type.
    type Msg: Clone + std::fmt::Debug;

    /// Executes one atomic step.
    fn step(&mut self, input: StepInput<Self::Msg>, eff: &mut Effects<Self::Msg>);

    /// Whether the process has returned (pseudocode `return`); the engine
    /// also tracks halting via [`Effects::halt`], and a halted process is
    /// never stepped again.
    fn halted(&self) -> bool {
        false
    }

    /// Whether the process is *quiescent*: it will produce **no effect on
    /// any future null step** (no sends, decisions, emulated outputs, op
    /// events or halts, under any failure-detector output), and it stays
    /// quiescent on such steps. Delivering a message may wake it.
    ///
    /// The engine uses this for starvation detection
    /// ([`StopReason::Starved`](crate::StopReason::Starved)): when every
    /// schedulable process is quiescent with an empty pending queue, no
    /// reachable step has an effect, so the run is stuck forever.
    /// Returning `false` is always sound (the default); returning `true`
    /// for a process that can still act on a null step is **unsound** and
    /// may stop a live run early.
    fn quiescent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_send_all_includes_self() {
        let mut eff: Effects<u8> = Effects::new();
        eff.send_all(3, 7);
        assert_eq!(eff.sends.len(), 3);
        assert!(eff.sends.iter().any(|&(to, _)| to == ProcessId(0)));
    }

    #[test]
    fn effects_send_others_excludes_self() {
        let mut eff: Effects<u8> = Effects::new();
        eff.send_others(3, ProcessId(1), 9);
        let dests: Vec<ProcessId> = eff.sends.iter().map(|&(to, _)| to).collect();
        assert_eq!(dests, vec![ProcessId(0), ProcessId(2)]);
    }

    #[test]
    #[should_panic(expected = "decide called twice")]
    fn double_decide_in_one_step_panics() {
        let mut eff: Effects<u8> = Effects::new();
        eff.decide(Value(1));
        eff.decide(Value(2));
    }

    #[test]
    fn empty_effects() {
        let eff: Effects<u8> = Effects::new();
        assert!(eff.is_empty());
        let mut eff2: Effects<u8> = Effects::new();
        eff2.halt();
        assert!(!eff2.is_empty());
    }

    #[test]
    fn op_events_accumulate_in_order() {
        let mut eff: Effects<u8> = Effects::new();
        eff.op_invoke(OpId(0), OpKind::Read);
        eff.op_return(OpId(0), OpKind::Read, Some(Value(3)));
        assert_eq!(eff.op_events.len(), 2);
        assert!(matches!(eff.op_events[0], OpEvent::Invoke { .. }));
        assert!(matches!(eff.op_events[1], OpEvent::Return { read_value: Some(Value(3)), .. }));
    }

    #[test]
    fn msg_id_display() {
        assert_eq!(MsgId(4).to_string(), "m4");
    }
}
