//! The deterministic process automaton interface.
//!
//! A distributed algorithm in the paper's model (§2.1) is a collection of
//! `n` deterministic automata, one per process. In each step a process
//! atomically: (1) receives a message (or a null message), (2) queries its
//! failure detector, and (3) changes state and sends messages. The
//! [`Automaton`] trait is that step function; [`StepInput`] carries (1) and
//! (2); [`Effects`] collects (3) plus the observable actions the harness
//! cares about (decisions, emulated failure-detector outputs, register
//! operation events, halting).

use sih_model::{FdOutput, OpId, OpKind, ProcessId, Time, Value};

/// Unique identifier of a message within a run (assigned at send time, in
/// send order — deterministic, so replays produce identical ids).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MsgId(pub u64);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message in flight or being delivered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Unique id of the message within the run.
    pub id: MsgId,
    /// The sender.
    pub from: ProcessId,
    /// The destination.
    pub to: ProcessId,
    /// The time of the sending step.
    pub sent_at: Time,
    /// The protocol payload.
    pub payload: M,
}

/// Everything a process observes in one atomic step.
#[derive(Clone, Debug)]
pub struct StepInput<M> {
    /// The stepping process's own identity.
    pub me: ProcessId,
    /// System size `n` (processes know `Π`).
    pub n: usize,
    /// The global time of this step. **Algorithms must not branch on
    /// this** — the global clock is not accessible to processes in the
    /// model; it is included for trace annotations only (register
    /// emulations use it to tag operation records, which is metadata, not
    /// protocol state).
    pub now: Time,
    /// The delivered message, if the scheduler chose to deliver one
    /// (the paper's "receives a message from some process or a null
    /// message").
    pub delivered: Option<Envelope<M>>,
    /// The failure-detector output `H(p, t)` for this step (the paper's
    /// "queries and receives a value from its failure detector module").
    pub fd: FdOutput,
}

/// One send action queued in an [`Effects`] set.
///
/// `send to all` / `send to all except me` are first-class: the payload is
/// stored **once** per fan-out, not cloned per recipient, and the engine
/// hands the whole batch to [`Network::broadcast`](crate::Network::broadcast)
/// which shares one ref-counted payload across all recipient queues. The
/// per-recipient expansion order (ids increasing, `except` skipped) is
/// exactly the order the old clone-per-recipient loop pushed, so message
/// ids — and therefore traces and replays — are unchanged.
#[derive(Clone, Debug)]
pub(crate) enum SendOp<M> {
    /// A single message to one process.
    To(ProcessId, M),
    /// One payload to every process in `0..n`, minus `except`.
    Fanout { n: usize, except: Option<ProcessId>, payload: M },
}

impl<M> SendOp<M> {
    /// Number of messages this op expands to.
    pub(crate) fn count(&self) -> usize {
        match self {
            SendOp::To(..) => 1,
            SendOp::Fanout { n, except, .. } => n - usize::from(except.is_some()),
        }
    }

    /// Rewraps the payload, preserving the op shape (wrapper automata tag
    /// an inner layer's sends without expanding its fan-outs).
    pub(crate) fn map_payload<N>(self, f: impl FnOnce(M) -> N) -> SendOp<N> {
        match self {
            SendOp::To(to, m) => SendOp::To(to, f(m)),
            SendOp::Fanout { n, except, payload } => {
                SendOp::Fanout { n, except, payload: f(payload) }
            }
        }
    }
}

/// The actions a process takes in one atomic step.
///
/// Obtained empty by the engine, filled by [`Automaton::step`], and then
/// applied atomically: sends enter the network, a decision/emulated output
/// is recorded in the trace, and `halt` stops the process for good (the
/// pseudocode's `return`).
#[derive(Clone, Debug, Default)]
pub struct Effects<M> {
    pub(crate) sends: Vec<SendOp<M>>,
    pub(crate) decision: Option<Value>,
    pub(crate) emulated: Option<FdOutput>,
    pub(crate) op_events: Vec<OpEvent>,
    pub(crate) halt: bool,
}

/// A register-operation boundary event emitted by a register client or
/// emulation (consumed by the linearizability checker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpEvent {
    /// An operation was invoked.
    Invoke {
        /// Operation id (unique per run, chosen by the emitter).
        id: OpId,
        /// Read or write.
        kind: OpKind,
    },
    /// An operation returned.
    Return {
        /// Operation id matching the invocation.
        id: OpId,
        /// Read or write.
        kind: OpKind,
        /// For reads, the value returned (`None` = register's initial ⊥).
        read_value: Option<Value>,
    },
}

impl<M> Effects<M> {
    /// A fresh, empty effect set.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            decision: None,
            emulated: None,
            op_events: Vec::new(),
            halt: false,
        }
    }

    /// Sends `payload` to process `to` (may be the sender itself).
    pub fn send(&mut self, to: ProcessId, payload: M) {
        self.sends.push(SendOp::To(to, payload));
    }

    /// Sends `payload` to every process in `Π`, including the sender (the
    /// pseudocode's "send to all"). The payload is stored once — the
    /// engine fans it out as a batch sharing one ref-counted copy.
    pub fn send_all(&mut self, n: usize, payload: M)
    where
        M: Clone,
    {
        self.sends.push(SendOp::Fanout { n, except: None, payload });
    }

    /// Sends `payload` to every process except `me` (the pseudocode's
    /// "send to every process except p", Figure 2 line 17). Stored as one
    /// batch, like [`Effects::send_all`].
    pub fn send_others(&mut self, n: usize, me: ProcessId, payload: M)
    where
        M: Clone,
    {
        self.sends.push(SendOp::Fanout { n, except: Some(me), payload });
    }

    /// Records the decision of this process (at most one per run).
    ///
    /// # Panics
    ///
    /// Panics if called twice within one step; the engine additionally
    /// rejects a second decision across steps.
    pub fn decide(&mut self, v: Value) {
        assert!(self.decision.is_none(), "decide called twice in one step");
        self.decision = Some(v);
    }

    /// Publishes the current emulated failure-detector output (the
    /// `output ← …` assignments of Figures 3, 5 and 6).
    pub fn set_output(&mut self, out: FdOutput) {
        self.emulated = Some(out);
    }

    /// Records a register-operation invocation event.
    pub fn op_invoke(&mut self, id: OpId, kind: OpKind) {
        self.op_events.push(OpEvent::Invoke { id, kind });
    }

    /// Records a register-operation response event.
    pub fn op_return(&mut self, id: OpId, kind: OpKind, read_value: Option<Value>) {
        self.op_events.push(OpEvent::Return { id, kind, read_value });
    }

    /// Stops this process for good (the pseudocode's `return`): the
    /// scheduler will never step it again.
    pub fn halt(&mut self) {
        self.halt = true;
    }

    /// The sends queued so far, expanded per recipient in send order
    /// (read access, e.g. for wrapper automata and tests). Fan-outs yield
    /// one `(recipient, &payload)` pair per recipient without cloning.
    pub fn sends(&self) -> impl Iterator<Item = (ProcessId, &M)> + '_ {
        self.sends.iter().flat_map(|op| match op {
            SendOp::To(to, m) => SendIter::One(std::iter::once((*to, m))),
            SendOp::Fanout { n, except, payload } => {
                SendIter::Fan { next: 0, n: *n as u32, except: *except, payload }
            }
        })
    }

    /// Total messages the queued sends expand to.
    pub fn send_count(&self) -> usize {
        self.sends.iter().map(SendOp::count).sum()
    }

    /// The decision recorded this step, if any.
    pub fn decision(&self) -> Option<Value> {
        self.decision
    }

    /// The emulated failure-detector output published this step, if any.
    pub fn emulated(&self) -> Option<FdOutput> {
        self.emulated
    }

    /// The register-operation events recorded this step.
    pub fn op_events(&self) -> &[OpEvent] {
        &self.op_events
    }

    /// Whether the process requested to halt this step.
    pub fn halt_requested(&self) -> bool {
        self.halt
    }

    /// Drains all queued sends, leaving the list empty — for wrapper
    /// automata (e.g. the Theorem 13 simulation) that translate and
    /// re-emit an inner automaton's effects **per recipient** (a stubborn
    /// link numbers each link's stream separately, so wrappers genuinely
    /// need the expansion; they run at explorer-scale `n`, where the
    /// per-recipient clones are what the old representation always paid).
    pub fn take_sends(&mut self) -> Vec<(ProcessId, M)>
    where
        M: Clone,
    {
        let mut out = Vec::with_capacity(self.send_count());
        for op in self.sends.drain(..) {
            match op {
                SendOp::To(to, m) => out.push((to, m)),
                SendOp::Fanout { n, except, payload } => {
                    for i in 0..n as u32 {
                        let to = ProcessId(i);
                        if Some(to) != except {
                            out.push((to, payload.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// Resets every effect, keeping allocations — the engine reuses one
    /// `Effects` scratch across steps (no per-step allocation).
    pub fn clear(&mut self) {
        self.sends.clear();
        self.decision = None;
        self.emulated = None;
        self.op_events.clear();
        self.halt = false;
    }

    /// Takes the recorded decision, leaving none.
    pub fn take_decision(&mut self) -> Option<Value> {
        self.decision.take()
    }

    /// Takes the published emulated output, leaving none.
    pub fn take_emulated(&mut self) -> Option<FdOutput> {
        self.emulated.take()
    }

    /// Drains the recorded operation events.
    pub fn take_op_events(&mut self) -> Vec<OpEvent> {
        std::mem::take(&mut self.op_events)
    }

    /// Whether no effect was produced (useful in tests).
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.decision.is_none()
            && self.emulated.is_none()
            && self.op_events.is_empty()
            && !self.halt
    }
}

/// Iterator behind [`Effects::sends`]: either a single unicast or a lazy
/// fan-out expansion.
enum SendIter<'a, M> {
    One(std::iter::Once<(ProcessId, &'a M)>),
    Fan { next: u32, n: u32, except: Option<ProcessId>, payload: &'a M },
}

impl<'a, M> Iterator for SendIter<'a, M> {
    type Item = (ProcessId, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SendIter::One(it) => it.next(),
            SendIter::Fan { next, n, except, payload } => loop {
                if next >= n {
                    return None;
                }
                let to = ProcessId(*next);
                *next += 1;
                if Some(to) != *except {
                    return Some((to, *payload));
                }
            },
        }
    }
}

/// A deterministic process automaton — one of the `n` automata making up a
/// distributed algorithm.
///
/// Determinism is load-bearing: the indistinguishability arguments of
/// Lemmas 7, 11 and 15 replay run prefixes and rely on identical behaviour
/// given identical inputs. Implementations must not use interior
/// randomness or wall-clock state; all nondeterminism lives in the
/// scheduler and the failure-detector history.
pub trait Automaton {
    /// The protocol message type. `Send + Sync` is required because
    /// broadcast payloads are stored once and shared (ref-counted) across
    /// recipient queues, and simulations cross thread boundaries in
    /// parallel sweeps; protocol messages are plain data, so both hold
    /// structurally.
    type Msg: Clone + std::fmt::Debug + Send + Sync;

    /// Executes one atomic step.
    fn step(&mut self, input: StepInput<Self::Msg>, eff: &mut Effects<Self::Msg>);

    /// Whether the process has returned (pseudocode `return`); the engine
    /// also tracks halting via [`Effects::halt`], and a halted process is
    /// never stepped again.
    fn halted(&self) -> bool {
        false
    }

    /// Whether the process is *quiescent*: it will produce **no effect on
    /// any future null step** (no sends, decisions, emulated outputs, op
    /// events or halts, under any failure-detector output), and it stays
    /// quiescent on such steps. Delivering a message may wake it.
    ///
    /// The engine uses this for starvation detection
    /// ([`StopReason::Starved`](crate::StopReason::Starved)): when every
    /// schedulable process is quiescent with an empty pending queue, no
    /// reachable step has an effect, so the run is stuck forever.
    /// Returning `false` is always sound (the default); returning `true`
    /// for a process that can still act on a null step is **unsound** and
    /// may stop a live run early.
    fn quiescent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_send_all_includes_self() {
        let mut eff: Effects<u8> = Effects::new();
        eff.send_all(3, 7);
        assert_eq!(eff.send_count(), 3);
        // One stored payload, three expanded recipients.
        assert_eq!(eff.sends.len(), 1);
        assert!(eff.sends().any(|(to, _)| to == ProcessId(0)));
    }

    #[test]
    fn effects_send_others_excludes_self() {
        let mut eff: Effects<u8> = Effects::new();
        eff.send_others(3, ProcessId(1), 9);
        let dests: Vec<ProcessId> = eff.sends().map(|(to, _)| to).collect();
        assert_eq!(dests, vec![ProcessId(0), ProcessId(2)]);
    }

    #[test]
    fn expansion_order_interleaves_unicasts_and_fanouts() {
        let mut eff: Effects<u8> = Effects::new();
        eff.send(ProcessId(2), 1);
        eff.send_all(2, 2);
        eff.send(ProcessId(0), 3);
        let pairs: Vec<(ProcessId, u8)> = eff.sends().map(|(to, m)| (to, *m)).collect();
        assert_eq!(
            pairs,
            vec![(ProcessId(2), 1), (ProcessId(0), 2), (ProcessId(1), 2), (ProcessId(0), 3)]
        );
        assert_eq!(eff.send_count(), 4);
        assert_eq!(eff.take_sends(), pairs);
        assert_eq!(eff.send_count(), 0);
    }

    #[test]
    fn clear_resets_everything_for_reuse() {
        let mut eff: Effects<u8> = Effects::new();
        eff.send_all(4, 1);
        eff.decide(Value(9));
        eff.op_invoke(OpId(1), OpKind::Read);
        eff.halt();
        eff.clear();
        assert!(eff.is_empty());
        assert_eq!(eff.send_count(), 0);
    }

    #[test]
    #[should_panic(expected = "decide called twice")]
    fn double_decide_in_one_step_panics() {
        let mut eff: Effects<u8> = Effects::new();
        eff.decide(Value(1));
        eff.decide(Value(2));
    }

    #[test]
    fn empty_effects() {
        let eff: Effects<u8> = Effects::new();
        assert!(eff.is_empty());
        let mut eff2: Effects<u8> = Effects::new();
        eff2.halt();
        assert!(!eff2.is_empty());
    }

    #[test]
    fn op_events_accumulate_in_order() {
        let mut eff: Effects<u8> = Effects::new();
        eff.op_invoke(OpId(0), OpKind::Read);
        eff.op_return(OpId(0), OpKind::Read, Some(Value(3)));
        assert_eq!(eff.op_events.len(), 2);
        assert!(matches!(eff.op_events[0], OpEvent::Invoke { .. }));
        assert!(matches!(eff.op_events[1], OpEvent::Return { read_value: Some(Value(3)), .. }));
    }

    #[test]
    fn msg_id_display() {
        assert_eq!(MsgId(4).to_string(), "m4");
    }
}
