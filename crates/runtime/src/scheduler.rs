//! Schedulers: who steps next, and which message (if any) they receive.
//!
//! The asynchrony of the model lives entirely here. A [`Scheduler`] is
//! asked, before every step, to pick a [`Choice`]: the stepping process and
//! an optional pending-message index to deliver to it. The engine enforces
//! crash times; schedulers must provide *fairness* (every correct process
//! keeps taking steps, every message to a live process is eventually
//! delivered) for runs to be legal runs of the paper's model —
//! [`FairScheduler`] does this with explicit anti-starvation bounds, while
//! [`ScriptedScheduler`] replays recorded or hand-authored prefixes for the
//! indistinguishability constructions.

// sih-analysis: allow(float) — deliver_prob is a single Bernoulli
// parameter fed to a seeded ChaCha8Rng; no accumulation, replay-safe.

use crate::sim::SchedState;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sih_model::ProcessId;

/// One scheduling decision: step `p`, optionally delivering the
/// `deliver`-th pending message of its arrival-ordered queue.
///
/// The derived order (process id first, then `None < Some(0) < Some(1) <
/// …`) is exactly the canonical enumeration order of the exhaustive
/// explorer, so comparing `Vec<Choice>` scripts lexicographically ranks
/// schedules in exploration order — the parallel explorer uses this to
/// define its thread-count-independent "first" violation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Choice {
    /// The process that takes the step.
    pub p: ProcessId,
    /// Index into `p`'s pending queue (arrival order), or `None` for a
    /// step that receives the null message.
    pub deliver: Option<usize>,
}

impl Choice {
    /// A step of `p` with no delivery.
    pub fn compute(p: ProcessId) -> Self {
        Choice { p, deliver: None }
    }

    /// A step of `p` delivering its oldest pending message.
    pub fn deliver_oldest(p: ProcessId) -> Self {
        Choice { p, deliver: Some(0) }
    }
}

/// Chooses the next step of a run.
pub trait Scheduler {
    /// Picks the next step given the engine's view, or `None` to end the
    /// run (e.g. everyone interesting has halted, or a script ran out).
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice>;
}

/// A fair randomized scheduler (the workhorse for positive experiments).
///
/// Fairness mechanisms, all deterministic in the seed:
///
/// * **Step fairness** — among schedulable processes (alive, not halted),
///   any process starved for more than [`starvation_bound`] consecutive
///   steps is scheduled immediately; otherwise the pick is uniform.
/// * **Delivery fairness** — when the chosen process has pending messages,
///   one is delivered with probability `deliver_prob`; a message older
///   than [`delivery_bound`] forces delivery of the oldest. Delivery picks
///   are skewed toward older messages.
///
/// [`starvation_bound`]: FairScheduler::starvation_bound
/// [`delivery_bound`]: FairScheduler::delivery_bound
#[derive(Clone, Debug)]
pub struct FairScheduler {
    rng: ChaCha8Rng,
    deliver_prob: f64,
    starvation_bound: u64,
    delivery_bound: u64,
    since_scheduled: Vec<u64>,
}

impl FairScheduler {
    /// A fair scheduler with the given seed and default bounds.
    pub fn new(seed: u64) -> Self {
        FairScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            deliver_prob: 0.75,
            starvation_bound: 64,
            delivery_bound: 96,
            since_scheduled: Vec::new(),
        }
    }

    /// Sets the probability of delivering a pending message when one
    /// exists (clamped to `[0.05, 1.0]` — a zero would break channel
    /// reliability in runs shorter than the delivery bound).
    pub fn with_deliver_prob(mut self, p: f64) -> Self {
        self.deliver_prob = p.clamp(0.05, 1.0);
        self
    }

    /// Maximum consecutive steps a schedulable process may be passed over.
    pub fn starvation_bound(&self) -> u64 {
        self.starvation_bound
    }

    /// Maximum age (in steps) a pending message may reach before its
    /// delivery is forced.
    pub fn delivery_bound(&self) -> u64 {
        self.delivery_bound
    }

    /// Overrides the anti-starvation bounds (both must be positive).
    pub fn with_bounds(mut self, starvation: u64, delivery: u64) -> Self {
        assert!(starvation > 0 && delivery > 0, "bounds must be positive");
        self.starvation_bound = starvation;
        self.delivery_bound = delivery;
        self
    }
}

impl Scheduler for FairScheduler {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        let schedulable: Vec<ProcessId> = view.schedulable().collect();
        if schedulable.is_empty() {
            return None;
        }
        if self.since_scheduled.len() < view.n {
            self.since_scheduled.resize(view.n, 0);
        }

        // Starvation rescue first, then uniform pick.
        let p = schedulable
            .iter()
            .copied()
            .find(|p| self.since_scheduled[p.index()] >= self.starvation_bound)
            .unwrap_or_else(|| schedulable[self.rng.gen_range(0..schedulable.len())]);

        for q in &schedulable {
            self.since_scheduled[q.index()] += 1;
        }
        self.since_scheduled[p.index()] = 0;

        let pending = view.pending_count(p);
        let deliver = if pending == 0 {
            None
        } else if view.oldest_age(p).is_some_and(|age| age >= self.delivery_bound) {
            view.oldest_index(p)
        } else if self.rng.gen_bool(self.deliver_prob) {
            // Skew toward older messages: pick two indices, keep the lower.
            let a = self.rng.gen_range(0..pending);
            let b = self.rng.gen_range(0..pending);
            Some(a.min(b))
        } else {
            None
        };
        Some(Choice { p, deliver })
    }
}

/// A deterministic round-robin scheduler: cycles through live processes in
/// id order, delivering the oldest pending message whenever one exists.
/// Produces the "synchronous-looking" runs that make good baselines and
/// fast tests.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: u32,
}

impl RoundRobinScheduler {
    /// A round-robin scheduler starting at `p0`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        let n = view.n as u32;
        for off in 0..n {
            let p = ProcessId((self.cursor + off) % n);
            if view.is_schedulable(p) {
                self.cursor = (p.0 + 1) % n;
                let deliver = if view.pending_count(p) > 0 { view.oldest_index(p) } else { None };
                return Some(Choice { p, deliver });
            }
        }
        None
    }
}

/// Replays a fixed sequence of choices, then optionally hands over to an
/// inner scheduler. The engine *skips* scripted choices that are illegal
/// at replay time only if `strict` is off; by default an illegal scripted
/// choice is surfaced as an engine panic, because the adversary
/// constructions depend on scripts being executed exactly.
pub struct ScriptedScheduler {
    choices: std::collections::VecDeque<Choice>,
    then: Option<Box<dyn Scheduler>>,
}

impl std::fmt::Debug for ScriptedScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedScheduler")
            .field("remaining", &self.choices.len())
            .field("has_fallback", &self.then.is_some())
            .finish()
    }
}

impl ScriptedScheduler {
    /// A scheduler that performs exactly `choices`, then stops.
    pub fn new(choices: impl IntoIterator<Item = Choice>) -> Self {
        ScriptedScheduler { choices: choices.into_iter().collect(), then: None }
    }

    /// A scheduler that performs `choices`, then delegates to `then`.
    pub fn followed_by(
        choices: impl IntoIterator<Item = Choice>,
        then: impl Scheduler + 'static,
    ) -> Self {
        ScriptedScheduler { choices: choices.into_iter().collect(), then: Some(Box::new(then)) }
    }

    /// Remaining scripted choices.
    pub fn remaining(&self) -> usize {
        self.choices.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        match self.choices.pop_front() {
            Some(c) => Some(c),
            None => self.then.as_mut().and_then(|s| s.choose(view)),
        }
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        (**self).choose(view)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        (**self).choose(view)
    }
}
