//! Schedulers: who steps next, and which message (if any) they receive.
//!
//! The asynchrony of the model lives entirely here. A [`Scheduler`] is
//! asked, before every step, to pick a [`Choice`]: the stepping process and
//! an optional pending-message index to deliver to it. The engine enforces
//! crash times; schedulers must provide *fairness* (every correct process
//! keeps taking steps, every message to a live process is eventually
//! delivered) for runs to be legal runs of the paper's model —
//! [`FairScheduler`] does this with explicit anti-starvation bounds, while
//! [`ScriptedScheduler`] replays recorded or hand-authored prefixes for the
//! indistinguishability constructions.

// sih-analysis: allow(float) — deliver_prob is a single Bernoulli
// parameter fed to a seeded ChaCha8Rng; no accumulation, replay-safe.

// sih-analysis: allow(index-reachable) — choose() indexes the n-sized pending/age arrays of
// SchedState, which the simulation builds for exactly its own process count.
use crate::sim::SchedState;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sih_model::ProcessId;

/// One scheduling decision: step `p`, optionally delivering the
/// `deliver`-th pending message of its arrival-ordered queue.
///
/// The derived order (process id first, then `None < Some(0) < Some(1) <
/// …`) is exactly the canonical enumeration order of the exhaustive
/// explorer, so comparing `Vec<Choice>` scripts lexicographically ranks
/// schedules in exploration order — the parallel explorer uses this to
/// define its thread-count-independent "first" violation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Choice {
    /// The process that takes the step.
    pub p: ProcessId,
    /// Index into `p`'s pending queue (arrival order), or `None` for a
    /// step that receives the null message.
    pub deliver: Option<usize>,
}

impl Choice {
    /// A step of `p` with no delivery.
    pub fn compute(p: ProcessId) -> Self {
        Choice { p, deliver: None }
    }

    /// A step of `p` delivering its oldest pending message.
    pub fn deliver_oldest(p: ProcessId) -> Self {
        Choice { p, deliver: Some(0) }
    }
}

/// Chooses the next step of a run.
pub trait Scheduler {
    /// Picks the next step given the engine's view, or `None` to end the
    /// run (e.g. everyone interesting has halted, or a script ran out).
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice>;
}

/// A fair randomized scheduler (the workhorse for positive experiments).
///
/// Fairness mechanisms, all deterministic in the seed:
///
/// * **Step fairness** — among schedulable processes (alive, not halted),
///   any process starved for more than [`starvation_bound`] consecutive
///   steps is scheduled immediately; otherwise the pick is uniform.
/// * **Delivery fairness** — when the chosen process has pending messages,
///   one is delivered with probability `deliver_prob`; a message older
///   than [`delivery_bound`] forces delivery of the oldest. Delivery picks
///   are skewed toward older messages.
///
/// [`starvation_bound`]: FairScheduler::starvation_bound
/// [`delivery_bound`]: FairScheduler::delivery_bound
#[derive(Clone, Debug)]
pub struct FairScheduler {
    rng: ChaCha8Rng,
    deliver_prob: f64,
    starvation_bound: u64,
    delivery_bound: u64,
    since_scheduled: Vec<u64>,
}

impl FairScheduler {
    /// A fair scheduler with the given seed and default bounds.
    pub fn new(seed: u64) -> Self {
        FairScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            deliver_prob: 0.75,
            starvation_bound: 64,
            delivery_bound: 96,
            since_scheduled: Vec::new(),
        }
    }

    /// Sets the probability of delivering a pending message when one
    /// exists (clamped to `[0.05, 1.0]` — a zero would break channel
    /// reliability in runs shorter than the delivery bound).
    pub fn with_deliver_prob(mut self, p: f64) -> Self {
        self.deliver_prob = p.clamp(0.05, 1.0);
        self
    }

    /// Maximum consecutive steps a schedulable process may be passed over.
    pub fn starvation_bound(&self) -> u64 {
        self.starvation_bound
    }

    /// Maximum age (in steps) a pending message may reach before its
    /// delivery is forced.
    pub fn delivery_bound(&self) -> u64 {
        self.delivery_bound
    }

    /// Overrides the anti-starvation bounds (both must be positive).
    pub fn with_bounds(mut self, starvation: u64, delivery: u64) -> Self {
        assert!(starvation > 0 && delivery > 0, "bounds must be positive");
        self.starvation_bound = starvation;
        self.delivery_bound = delivery;
        self
    }
}

impl Scheduler for FairScheduler {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        let schedulable: Vec<ProcessId> = view.schedulable().collect();
        if schedulable.is_empty() {
            return None;
        }
        if self.since_scheduled.len() < view.n {
            self.since_scheduled.resize(view.n, 0);
        }

        // Starvation rescue first, then uniform pick.
        let p = schedulable
            .iter()
            .copied()
            .find(|p| self.since_scheduled[p.index()] >= self.starvation_bound)
            .unwrap_or_else(|| schedulable[self.rng.gen_range(0..schedulable.len())]);

        for q in &schedulable {
            self.since_scheduled[q.index()] += 1;
        }
        self.since_scheduled[p.index()] = 0;

        let pending = view.pending_count(p);
        let deliver = if pending == 0 {
            None
        } else if view.oldest_age(p).is_some_and(|age| age >= self.delivery_bound) {
            view.oldest_index(p)
        } else if self.rng.gen_bool(self.deliver_prob) {
            // Skew toward older messages: pick two indices, keep the lower.
            let a = self.rng.gen_range(0..pending);
            let b = self.rng.gen_range(0..pending);
            Some(a.min(b))
        } else {
            None
        };
        Some(Choice { p, deliver })
    }
}

/// A deterministic round-robin scheduler: cycles through live processes in
/// id order, delivering the oldest pending message whenever one exists.
/// Produces the "synchronous-looking" runs that make good baselines and
/// fast tests.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: u32,
}

impl RoundRobinScheduler {
    /// A round-robin scheduler starting at `p0`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        let n = view.n as u32;
        for off in 0..n {
            let p = ProcessId((self.cursor + off) % n);
            if view.is_schedulable(p) {
                self.cursor = (p.0 + 1) % n;
                let deliver = if view.pending_count(p) > 0 { view.oldest_index(p) } else { None };
                return Some(Choice { p, deliver });
            }
        }
        None
    }
}

/// The typed error a strict [`ScriptedScheduler`] records when its script
/// runs out: in strict mode exhaustion must *end* the run (as
/// `StopReason::SchedulerExhausted`), never silently hand over to the
/// fallback — replay harnesses depend on "every executed step came from
/// the script" to call a replay bit-identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScriptExhausted {
    /// Scripted choices performed before the script ran out.
    pub performed: usize,
}

impl std::fmt::Display for ScriptExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script exhausted after {} scripted choices (strict mode)", self.performed)
    }
}

impl std::error::Error for ScriptExhausted {}

/// Replays a fixed sequence of choices, then optionally hands over to an
/// inner scheduler. An illegal scripted choice is surfaced as an engine
/// panic, because the adversary constructions depend on scripts being
/// executed exactly.
///
/// In **strict** mode ([`ScriptedScheduler::strict`], or
/// [`set_strict`](ScriptedScheduler::set_strict) mid-run), script
/// exhaustion is a hard stop: the fallback is *not* consulted — even if
/// one was installed — the run ends with `SchedulerExhausted`, and the
/// typed [`ScriptExhausted`] error is available from
/// [`exhaustion`](ScriptedScheduler::exhaustion). Without strict mode an
/// exhausted script silently delegates to the fallback (the historical
/// behavior, still right for "scripted prefix, then fair" experiments).
pub struct ScriptedScheduler {
    choices: std::collections::VecDeque<Choice>,
    then: Option<Box<dyn Scheduler>>,
    performed: usize,
    strict: bool,
    exhausted: Option<ScriptExhausted>,
}

impl std::fmt::Debug for ScriptedScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedScheduler")
            .field("remaining", &self.choices.len())
            .field("has_fallback", &self.then.is_some())
            .field("strict", &self.strict)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl ScriptedScheduler {
    /// A scheduler that performs exactly `choices`, then stops.
    pub fn new(choices: impl IntoIterator<Item = Choice>) -> Self {
        ScriptedScheduler {
            choices: choices.into_iter().collect(),
            then: None,
            performed: 0,
            strict: false,
            exhausted: None,
        }
    }

    /// A scheduler that performs `choices`, then delegates to `then`.
    pub fn followed_by(
        choices: impl IntoIterator<Item = Choice>,
        then: impl Scheduler + 'static,
    ) -> Self {
        ScriptedScheduler { then: Some(Box::new(then)), ..ScriptedScheduler::new(choices) }
    }

    /// Strict mode: exhaustion ends the run with a typed error instead of
    /// handing over to the fallback.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Toggles strict mode mid-run. Turning strict on after the script
    /// already ran out still applies: the *next* `choose` records the
    /// exhaustion and stops instead of consulting the fallback.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// The typed exhaustion error, if strict mode stopped the run.
    pub fn exhaustion(&self) -> Option<&ScriptExhausted> {
        self.exhausted.as_ref()
    }

    /// Remaining scripted choices.
    pub fn remaining(&self) -> usize {
        self.choices.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        match self.choices.pop_front() {
            Some(c) => {
                self.performed += 1;
                Some(c)
            }
            None if self.strict => {
                self.exhausted = Some(ScriptExhausted { performed: self.performed });
                None
            }
            None => self.then.as_mut().and_then(|s| s.choose(view)),
        }
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        (**self).choose(view)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn choose(&mut self, view: &SchedState<'_>) -> Option<Choice> {
        (**self).choose(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Automaton, Effects, Simulation, StepInput, StopReason};
    use sih_model::{FailurePattern, NoDetector};

    #[derive(Clone, Debug, Default)]
    struct Idle;

    impl Automaton for Idle {
        type Msg = ();
        fn step(&mut self, _input: StepInput<()>, _eff: &mut Effects<()>) {}
    }

    fn sim(n: usize) -> Simulation<Idle> {
        Simulation::new(vec![Idle; n], FailurePattern::all_correct(n))
    }

    fn script(len: usize) -> Vec<Choice> {
        (0..len).map(|i| Choice::compute(ProcessId((i % 2) as u32))).collect()
    }

    #[test]
    fn non_strict_exhaustion_hands_over_to_fallback() {
        let mut sim = sim(2);
        let mut sched = ScriptedScheduler::followed_by(script(3), RoundRobinScheduler::new());
        let outcome = sim.run(&mut sched, &NoDetector, 10);
        // The fallback keeps the run going until the step bound.
        assert_eq!(outcome.reason, StopReason::MaxSteps);
        assert_eq!(sim.script().len(), 10);
        assert!(sched.exhaustion().is_none());
    }

    #[test]
    fn strict_exhaustion_is_a_typed_stop_even_with_a_fallback() {
        let mut sim = sim(2);
        let mut sched =
            ScriptedScheduler::followed_by(script(3), RoundRobinScheduler::new()).strict();
        let outcome = sim.run(&mut sched, &NoDetector, 10);
        // The fallback is never consulted: exactly the script executes.
        assert_eq!(outcome.reason, StopReason::SchedulerExhausted);
        assert_eq!(sim.script(), &script(3)[..]);
        let err = sched.exhaustion().expect("strict exhaustion must be recorded");
        assert_eq!(err.performed, 3);
        assert!(err.to_string().contains("after 3 scripted choices"));
    }

    #[test]
    fn strict_set_mid_run_stops_at_exhaustion() {
        let mut sim = sim(2);
        let mut sched = ScriptedScheduler::followed_by(script(4), RoundRobinScheduler::new());
        // Execute two scripted steps under the lenient default...
        for _ in 0..2 {
            let choice = {
                let view = sim.sched_state();
                sched.choose(&view).expect("script has choices left")
            };
            sim.step(choice, &NoDetector);
        }
        // ...then the harness tightens the contract mid-run.
        sched.set_strict(true);
        let outcome = sim.run(&mut sched, &NoDetector, 10);
        assert_eq!(outcome.reason, StopReason::SchedulerExhausted);
        assert_eq!(sim.script().len(), 4); // the two remaining scripted steps ran
        assert_eq!(sched.exhaustion(), Some(&ScriptExhausted { performed: 4 }));
    }

    #[test]
    fn strict_without_fallback_still_reports() {
        let mut sim = sim(1);
        let mut sched = ScriptedScheduler::new(script(0)).strict();
        let outcome = sim.run(&mut sched, &NoDetector, 5);
        assert_eq!(outcome.reason, StopReason::SchedulerExhausted);
        assert_eq!(sched.exhaustion(), Some(&ScriptExhausted { performed: 0 }));
    }
}
