//! Fairness and legality tests for the schedulers — the run-validity
//! conditions of the paper's model ("every correct process takes an
//! infinite number of steps"; reliable channels) translated to bounded
//! assertions on long finite runs.

#![cfg(test)]

use crate::automaton::{Automaton, Effects, StepInput};
use crate::scheduler::{Choice, FairScheduler, RoundRobinScheduler, ScriptedScheduler};
use crate::sim::Simulation;
use proptest::prelude::*;
use sih_model::{FailurePattern, NoDetector, ProcessId, Time};

/// Sends one message to everyone each step; counts receipts.
#[derive(Clone, Debug, Default)]
struct Flood {
    received: u64,
    steps: u64,
}

impl Automaton for Flood {
    type Msg = u8;
    fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
        self.steps += 1;
        if input.delivered.is_some() {
            self.received += 1;
        }
        // Bound the flood so queues stay finite.
        if self.steps <= 50 {
            eff.send_all(input.n, 1);
        }
    }
}

#[test]
fn fair_scheduler_steps_every_correct_process() {
    let n = 6;
    let pattern = FailurePattern::all_correct(n);
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern.clone());
    let mut sched = FairScheduler::new(9);
    sim.run(&mut sched, &NoDetector, 5_000);
    for i in 0..n as u32 {
        let p = ProcessId(i);
        let steps = sim.trace().steps_of(p);
        assert!(steps > 200, "{p} starved: only {steps} steps");
    }
}

#[test]
fn fair_scheduler_respects_starvation_bound() {
    // No schedulable process goes more than `starvation_bound` choices
    // without being scheduled.
    let n = 5;
    let pattern = FailurePattern::all_correct(n);
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
    let bound = 16;
    let mut sched = FairScheduler::new(3).with_bounds(bound, 24);
    sim.run(&mut sched, &NoDetector, 3_000);
    let script = sim.script();
    let mut last_seen = vec![0usize; n];
    for (idx, choice) in script.iter().enumerate() {
        last_seen[choice.p.index()] = idx;
        for (i, seen) in last_seen.iter().enumerate() {
            let gap = idx - seen;
            assert!(
                gap <= (bound as usize) + n,
                "p{i} unscheduled for {gap} steps (bound {bound})"
            );
        }
    }
}

#[test]
fn fair_scheduler_delivers_every_message_eventually() {
    // Channel reliability: at the end of a long run with bounded
    // flooding, no message is older than the delivery bound.
    let n = 4;
    let pattern = FailurePattern::all_correct(n);
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
    let mut sched = FairScheduler::new(5).with_deliver_prob(0.3);
    sim.run(&mut sched, &NoDetector, 8_000);
    let now = sim.now();
    let delivery_bound = 96 + 64; // delivery bound + slack for scheduling gaps
    for i in 0..n as u32 {
        let p = ProcessId(i);
        for env in sim.network().pending(p) {
            assert!(
                now - env.sent_at <= delivery_bound,
                "stale message at {p}: sent {} now {now}",
                env.sent_at
            );
        }
    }
}

#[test]
fn round_robin_cycles_in_id_order() {
    let n = 4;
    let pattern = FailurePattern::all_correct(n);
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
    let mut sched = RoundRobinScheduler::new();
    sim.run(&mut sched, &NoDetector, 12);
    let order: Vec<u32> = sim.script().iter().map(|c| c.p.0).collect();
    assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
}

#[test]
fn round_robin_skips_crashed_processes() {
    let n = 3;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), Time(2)).build();
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
    let mut sched = RoundRobinScheduler::new();
    sim.run(&mut sched, &NoDetector, 8);
    let order: Vec<u32> = sim.script().iter().map(|c| c.p.0).collect();
    // p1 may step at times 1 and 2 only (its slot at t=2), then vanishes.
    assert!(order.iter().skip(3).all(|&p| p != 1), "{order:?}");
}

#[test]
fn scripted_scheduler_hands_over_to_fallback() {
    let n = 2;
    let pattern = FailurePattern::all_correct(n);
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
    let script = vec![Choice::compute(ProcessId(1)); 3];
    let mut sched = ScriptedScheduler::followed_by(script, RoundRobinScheduler::new());
    assert_eq!(sched.remaining(), 3);
    sim.run(&mut sched, &NoDetector, 7);
    let order: Vec<u32> = sim.script().iter().map(|c| c.p.0).collect();
    assert_eq!(&order[..3], &[1, 1, 1]);
    assert_eq!(order.len(), 7);
    assert_eq!(sched.remaining(), 0);
}

#[test]
fn scripted_scheduler_without_fallback_exhausts() {
    let n = 2;
    let pattern = FailurePattern::all_correct(n);
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
    let mut sched = ScriptedScheduler::new(vec![Choice::compute(ProcessId(0)); 2]);
    let outcome = sim.run(&mut sched, &NoDetector, 100);
    assert_eq!(outcome.steps, 2);
    assert_eq!(outcome.reason, crate::sim::StopReason::SchedulerExhausted);
}

/// A quorum-style automaton for the starvation tests: broadcasts one
/// request on its first step, then waits silently for any reply — exactly
/// the shape that starves under a total partition.
#[derive(Clone, Debug, Default)]
struct AskOnce {
    asked: bool,
    got_reply: bool,
}

impl Automaton for AskOnce {
    type Msg = u8;
    fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
        if !self.asked {
            self.asked = true;
            eff.send_all(input.n, 0);
        }
        if input.delivered.is_some() {
            self.got_reply = true;
        }
    }
    fn quiescent(&self) -> bool {
        // After the first step the automaton only reacts to deliveries.
        self.asked
    }
}

#[test]
fn fully_partitioned_run_stops_starved_in_linear_steps() {
    use sih_model::{LinkFaultPlan, NoDetector};
    let n = 6;
    let pattern = FailurePattern::all_correct(n);
    let plan = LinkFaultPlan::builder(n).blackout(Time::ZERO, None).build();
    let mut sim = Simulation::new(vec![AskOnce::default(); n], pattern).with_link_faults(plan);
    let outcome = sim.run(&mut RoundRobinScheduler::new(), &NoDetector, 1_000_000);
    // One step per process and every broadcast is eaten by the blackout;
    // the engine then proves no further step can have an effect — O(n)
    // steps, not the million-step budget.
    assert_eq!(outcome.reason, crate::sim::StopReason::Starved);
    assert_eq!(outcome.steps, n as u64, "stops right after the last first step");
    assert_eq!(outcome.sent, (n * n) as u64);
    assert_eq!(outcome.dropped, (n * n) as u64);
    assert_eq!(outcome.delivered, 0);
    assert_eq!(outcome.in_flight, 0);
}

#[test]
fn healed_partition_lets_the_same_system_finish() {
    use sih_model::{LinkFaultPlan, NoDetector};
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    // Blackout that heals at t=20: the broadcasts at t<=n are lost, but
    // AskOnce never resends — so the run still starves (nothing in
    // flight). A blackout that never starts, by contrast, lets replies
    // flow. This pins down that Starved depends on reachability, not on
    // the mere presence of a plan.
    let healing = LinkFaultPlan::builder(n).blackout(Time::ZERO, Some(Time(20))).build();
    let mut sim =
        Simulation::new(vec![AskOnce::default(); n], pattern.clone()).with_link_faults(healing);
    let outcome = sim.run(&mut RoundRobinScheduler::new(), &NoDetector, 1_000);
    assert_eq!(outcome.reason, crate::sim::StopReason::Starved);

    let idle = LinkFaultPlan::builder(n).blackout(Time(500), None).build();
    let mut sim = Simulation::new(vec![AskOnce::default(); n], pattern).with_link_faults(idle);
    let outcome = sim.run_until(&mut RoundRobinScheduler::new(), &NoDetector, 1_000, |s| {
        (0..n).all(|i| s.process(ProcessId(i as u32)).got_reply)
    });
    assert_eq!(outcome.reason, crate::sim::StopReason::AllCorrectHalted);
    assert_eq!(outcome.dropped, 0);
}

#[test]
fn run_outcome_counters_satisfy_the_network_invariant() {
    use sih_model::{LinkFaultPlan, NoDetector};
    let n = 4;
    let pattern = FailurePattern::all_correct(n);
    let plan = LinkFaultPlan::builder(n)
        .drop_every(ProcessId(0), ProcessId(1), 2, 0, Time::ZERO, Some(Time(300)))
        .duplicate_every(ProcessId(2), ProcessId(3), 3, 1, Time::ZERO, Some(Time(200)))
        .build();
    let mut sim = Simulation::new(vec![Flood::default(); n], pattern).with_link_faults(plan);
    let outcome = sim.run(&mut FairScheduler::new(11), &NoDetector, 2_000);
    assert!(outcome.dropped > 0, "the drop window saw traffic");
    assert!(outcome.duplicated > 0, "the duplicate window saw traffic");
    assert_eq!(outcome.sent, outcome.delivered + outcome.dropped + outcome.in_flight);
    // RunOutcome mirrors the network's own counters.
    assert_eq!(outcome.sent, sim.network().sent_count());
    assert_eq!(outcome.delivered, sim.network().delivered_count());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fairness_holds_for_arbitrary_seeds_and_probabilities(
        seed in 0u64..10_000,
        prob in 0.05f64..1.0,
    ) {
        let n = 4;
        let pattern = FailurePattern::all_correct(n);
        let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
        let mut sched = FairScheduler::new(seed).with_deliver_prob(prob);
        sim.run(&mut sched, &NoDetector, 4_000);
        for i in 0..n as u32 {
            prop_assert!(sim.trace().steps_of(ProcessId(i)) > 100);
        }
        // All 50 × n × n flooded messages either delivered or younger
        // than the delivery bound.
        let now = sim.now();
        for i in 0..n as u32 {
            for env in sim.network().pending(ProcessId(i)) {
                prop_assert!(now - env.sent_at <= 96 + 64);
            }
        }
    }

    #[test]
    fn scheduled_choices_are_always_legal(seed in 0u64..10_000) {
        // The engine panics on illegal choices; a clean run is the proof.
        let n = 5;
        let pattern = FailurePattern::builder(n)
            .crash_at(ProcessId(0), Time(40))
            .crash_at(ProcessId(3), Time(90))
            .build();
        let mut sim = Simulation::new(vec![Flood::default(); n], pattern);
        let mut sched = FairScheduler::new(seed);
        sim.run(&mut sched, &NoDetector, 2_000);
        prop_assert!(sim.trace().total_steps() == 2_000);
    }
}
