//! Happens-before tracking for the DPOR explorer: vector clocks on
//! message send and delivery.
//!
//! The source-set explorer ([`crate::explore`] with
//! [`ExploreConfig::dpor`]) needs to know, for any two events of a
//! schedule, whether one *happens-before* the other (Lamport's causal
//! order restricted to this model: program order per process plus
//! send→deliver edges) or whether they are concurrent. The classical
//! mechanization is a vector clock per process:
//!
//! * a step of `p` ticks `clock[p][p]`;
//! * a send stamps the outgoing message with a copy of the sender's
//!   post-tick clock;
//! * a delivery at `q` merges the message's stamp into `clock[q]`
//!   (pointwise max) before the tick.
//!
//! Two events are HB-ordered iff the earlier one's clock is pointwise ≤
//! the later one's; otherwise they are **concurrent** — and a pair of
//! concurrent, dependent events is a *race* the DPOR layer must explore
//! in both orders (see [`crate::dpor`]).
//!
//! [`HbState`] shadows a [`Simulation`](crate::Simulation): the explorer
//! applies the same step to both, keeping one stamped clock per pending
//! message in per-destination queues aligned (index for index) with the
//! network's arrival queues. Everything here is deterministic plain
//! data — `Vec`s indexed by dense process ids, no `std` hashers, no
//! ambient time — per the determinism contract (DESIGN.md §6).
//!
//! [`ExploreConfig::dpor`]: crate::ExploreConfig::dpor

// sih-analysis: allow(index-reachable) — clocks and message-queue vectors are n-sized arrays
// indexed by ProcessId from the explorer's own choice enumeration, bounded by n at construction.
use sih_model::ProcessId;
use std::collections::VecDeque;

/// A vector clock over `n` processes.
#[derive(Debug, PartialEq, Eq)]
pub struct VClock {
    counts: Vec<u64>,
}

// Manual Clone so `clone_from` (the explorer's per-edge child
// materialization) reuses the counts allocation.
impl Clone for VClock {
    fn clone(&self) -> Self {
        VClock { counts: self.counts.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.counts.clone_from(&source.counts);
    }
}

impl VClock {
    /// The zero clock over `n` processes.
    pub fn new(n: usize) -> Self {
        VClock { counts: vec![0; n] }
    }

    /// Number of processes the clock covers.
    pub fn n(&self) -> usize {
        self.counts.len()
    }

    /// `p`'s component.
    pub fn get(&self, p: ProcessId) -> u64 {
        self.counts[p.index()]
    }

    /// Advances `p`'s own component by one step.
    pub fn tick(&mut self, p: ProcessId) {
        self.counts[p.index()] += 1;
    }

    /// Pointwise maximum — the receive-side join of a message stamp.
    pub fn merge(&mut self, other: &VClock) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (pointwise ≤).
    pub fn leq(&self, other: &VClock) -> bool {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Whether the two clocks are causally unordered — neither event
    /// happens-before the other.
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

/// The happens-before shadow of one explorer state: per-process clocks
/// plus one stamp per pending message, queue-aligned with the network.
#[derive(Debug)]
pub struct HbState {
    /// `clocks[p]`: p's current vector clock.
    clocks: Vec<VClock>,
    /// `msgs[to]`: stamps of the messages pending at `to`, in arrival
    /// order (the same alive-index space [`Network::deliver`] uses).
    ///
    /// [`Network::deliver`]: crate::Network::deliver
    msgs: Vec<VecDeque<VClock>>,
}

// Manual Clone so `clone_from` reuses every clock and queue allocation.
impl Clone for HbState {
    fn clone(&self) -> Self {
        HbState { clocks: self.clocks.clone(), msgs: self.msgs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        // Element-wise so inner `Vec` buffers survive; the outer lengths
        // are both `n` for shadows of same-size simulations, but fall
        // back to a plain clone if they ever differ.
        if self.clocks.len() == source.clocks.len() {
            for (dst, src) in self.clocks.iter_mut().zip(&source.clocks) {
                dst.clone_from(src);
            }
            for (dst, src) in self.msgs.iter_mut().zip(&source.msgs) {
                dst.clone_from(src);
            }
        } else {
            *self = source.clone();
        }
    }
}

impl HbState {
    /// The initial shadow: zero clocks, no pending stamps.
    pub fn new(n: usize) -> Self {
        HbState {
            clocks: (0..n).map(|_| VClock::new(n)).collect(),
            msgs: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.clocks.len()
    }

    /// `p`'s current clock.
    pub fn clock(&self, p: ProcessId) -> &VClock {
        &self.clocks[p.index()]
    }

    /// The stamp of the `index`-th pending message at `to` (the same
    /// index [`Network::deliver`] would take).
    ///
    /// [`Network::deliver`]: crate::Network::deliver
    pub fn msg_clock(&self, to: ProcessId, index: usize) -> &VClock {
        &self.msgs[to.index()][index]
    }

    /// Number of stamped messages pending at `to` — always equal to the
    /// shadowed network's `pending_count(to)`.
    pub fn pending(&self, to: ProcessId) -> usize {
        self.msgs[to.index()].len()
    }

    /// Applies one executed step to the shadow: `p` delivered the
    /// `deliver`-th pending message (or none), then sent the messages
    /// that made each destination's queue grow by `new_msgs[to]`.
    ///
    /// The explorer computes `new_msgs` by diffing the network's
    /// per-destination pending counts across [`Simulation::step`]
    /// (accounting for the delivery itself), which also covers
    /// broadcasts, link-fault drops (no growth) and duplications (extra
    /// growth) without the shadow knowing about any of them.
    ///
    /// [`Simulation::step`]: crate::Simulation::step
    pub fn apply(&mut self, p: ProcessId, deliver: Option<usize>, new_msgs: &[usize]) {
        debug_assert_eq!(new_msgs.len(), self.msgs.len());
        if let Some(idx) = deliver {
            let stamp = self.msgs[p.index()]
                .remove(idx)
                .expect("invariant: the shadow queues mirror the network's pending queues");
            self.clocks[p.index()].merge(&stamp);
        }
        self.clocks[p.index()].tick(p);
        for (to, &grew) in new_msgs.iter().enumerate() {
            for _ in 0..grew {
                let stamp = self.clocks[p.index()].clone();
                self.msgs[to].push_back(stamp);
            }
        }
    }

    /// Whether the *last* message appended at `to` is concurrent with
    /// `to`'s current clock — the send-vs-pending-delivery race test the
    /// source-set layer runs after a step that grew `to`'s queue.
    ///
    /// A fresh send is almost always a race (the stamp carries the
    /// sender's tick, which the destination has not observed), but the
    /// judgment is made from the clocks, not assumed: a send whose stamp
    /// the destination has already fully observed is HB-ordered and
    /// races with nothing.
    pub fn send_races(&self, to: ProcessId) -> bool {
        match self.msgs[to.index()].back() {
            Some(stamp) => !stamp.leq(&self.clocks[to.index()]),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_and_merges_order_events() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(ProcessId(0));
        assert!(!a.leq(&b));
        assert!(b.leq(&a));
        b.tick(ProcessId(1));
        assert!(a.concurrent(&b));
        b.merge(&a);
        assert!(a.leq(&b));
        assert!(!a.concurrent(&b));
        assert_eq!(b.get(ProcessId(0)), 1);
        assert_eq!(b.get(ProcessId(1)), 1);
    }

    #[test]
    fn shadow_tracks_send_deliver_causality() {
        let mut hb = HbState::new(2);
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        // p0 steps, sending one message to p1.
        hb.apply(p0, None, &[0, 1]);
        assert_eq!(hb.pending(p1), 1);
        // The fresh send is concurrent with p1's clock: a race.
        assert!(hb.send_races(p1));
        // p1 steps without delivering: still concurrent with the send.
        hb.apply(p1, None, &[0, 0]);
        assert!(hb.clock(p0).concurrent(hb.clock(p1)));
        // p1 delivers: now p0's send happens-before p1's state.
        hb.apply(p1, Some(0), &[0, 0]);
        assert_eq!(hb.pending(p1), 0);
        assert!(hb.clock(p0).leq(hb.clock(p1)));
    }

    #[test]
    fn delivery_by_index_removes_the_matching_stamp() {
        let mut hb = HbState::new(2);
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        hb.apply(p0, None, &[0, 2]); // two sends to p1 in one step
        hb.apply(p0, None, &[0, 1]); // a later third send
        assert_eq!(hb.pending(p1), 3);
        let late = hb.msg_clock(p1, 2).clone();
        // Delivering index 0 leaves the later stamps at shifted indices.
        hb.apply(p1, Some(0), &[0, 0]);
        assert_eq!(hb.pending(p1), 2);
        assert_eq!(*hb.msg_clock(p1, 1), late);
    }

    #[test]
    fn observed_sends_do_not_race() {
        let mut hb = HbState::new(2);
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        hb.apply(p0, None, &[0, 1]);
        hb.apply(p1, Some(0), &[0, 0]); // p1 observes everything p0 did
                                        // A p1 self-send stamped after the merge is ≤ its own clock once
                                        // delivered… but still races with p0? No: the stamp is p1's own
                                        // clock, which p1 trivially dominates.
        hb.apply(p1, None, &[0, 1]);
        assert!(!hb.send_races(p1));
    }

    #[test]
    fn clone_from_matches_clone() {
        let mut hb = HbState::new(3);
        hb.apply(ProcessId(0), None, &[0, 1, 1]);
        hb.apply(ProcessId(1), Some(0), &[1, 0, 0]);
        let fresh = hb.clone();
        let mut reused = HbState::new(3);
        reused.apply(ProcessId(2), None, &[1, 1, 0]);
        reused.clone_from(&hb);
        assert_eq!(format!("{fresh:?}"), format!("{reused:?}"));
    }
}
