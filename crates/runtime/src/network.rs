//! The reliable, asynchronous network.
//!
//! Channels are reliable (no loss, no duplication, no corruption) but
//! asynchronous: a message stays pending until a scheduler chooses to
//! deliver it, arbitrarily later. There is no FIFO guarantee — the paper's
//! model does not assume one, and several adversary constructions exploit
//! reordering. Pending queues are kept in arrival order so that delivery
//! *by index* is deterministic and replayable.

use crate::automaton::{Envelope, MsgId};
use sih_model::{ProcessId, Time};

/// The in-flight message state of a run.
#[derive(Clone, Debug)]
pub struct Network<M> {
    /// `pending[to]`: messages awaiting delivery at `to`, in arrival order.
    pending: Vec<Vec<Envelope<M>>>,
    next_id: u64,
    sent_count: u64,
    delivered_count: u64,
}

impl<M: Clone> Network<M> {
    /// An empty network over `n` processes.
    pub fn new(n: usize) -> Self {
        Network {
            pending: (0..n).map(|_| Vec::new()).collect(),
            next_id: 0,
            sent_count: 0,
            delivered_count: 0,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues a message; returns its id.
    pub fn send(&mut self, from: ProcessId, to: ProcessId, sent_at: Time, payload: M) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        self.sent_count += 1;
        self.pending[to.index()].push(Envelope { id, from, to, sent_at, payload });
        id
    }

    /// Number of messages pending at `to`.
    pub fn pending_count(&self, to: ProcessId) -> usize {
        self.pending[to.index()].len()
    }

    /// The pending messages at `to`, in arrival order (oldest first).
    pub fn pending(&self, to: ProcessId) -> &[Envelope<M>] {
        &self.pending[to.index()]
    }

    /// Send time of the oldest message pending at `to`, if any — used by
    /// fair schedulers to bound delivery delay.
    pub fn oldest_sent_at(&self, to: ProcessId) -> Option<Time> {
        self.pending[to.index()].iter().map(|e| e.sent_at).min()
    }

    /// Index (into the arrival-ordered pending queue) of the oldest
    /// message pending at `to`.
    pub fn oldest_index(&self, to: ProcessId) -> Option<usize> {
        let q = &self.pending[to.index()];
        (0..q.len()).min_by_key(|&i| q[i].sent_at)
    }

    /// Removes and returns the `index`-th pending message at `to`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn deliver(&mut self, to: ProcessId, index: usize) -> Envelope<M> {
        self.delivered_count += 1;
        self.pending[to.index()].remove(index)
    }

    /// Total messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.sent_count
    }

    /// Total messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Total messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_assigns_sequential_ids() {
        let mut net: Network<u8> = Network::new(2);
        let a = net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        let b = net.send(ProcessId(1), ProcessId(0), Time(2), 20);
        assert_eq!(a, MsgId(0));
        assert_eq!(b, MsgId(1));
        assert_eq!(net.sent_count(), 2);
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    fn pending_queues_keep_arrival_order() {
        let mut net: Network<u8> = Network::new(2);
        net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        net.send(ProcessId(0), ProcessId(1), Time(2), 20);
        let payloads: Vec<u8> = net.pending(ProcessId(1)).iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![10, 20]);
        assert_eq!(net.pending_count(ProcessId(1)), 2);
        assert_eq!(net.pending_count(ProcessId(0)), 0);
    }

    #[test]
    fn deliver_removes_by_index() {
        let mut net: Network<u8> = Network::new(2);
        net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        net.send(ProcessId(0), ProcessId(1), Time(2), 20);
        let e = net.deliver(ProcessId(1), 1);
        assert_eq!(e.payload, 20);
        assert_eq!(net.pending_count(ProcessId(1)), 1);
        assert_eq!(net.delivered_count(), 1);
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn oldest_tracking() {
        let mut net: Network<u8> = Network::new(3);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), None);
        assert_eq!(net.oldest_index(ProcessId(2)), None);
        net.send(ProcessId(0), ProcessId(2), Time(5), 1);
        net.send(ProcessId(1), ProcessId(2), Time(3), 2);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), Some(Time(3)));
        assert_eq!(net.oldest_index(ProcessId(2)), Some(1));
    }
}
