//! The reliable, asynchronous network.
//!
//! Channels are reliable (no loss, no duplication, no corruption) but
//! asynchronous: a message stays pending until a scheduler chooses to
//! deliver it, arbitrarily later. There is no FIFO guarantee — the paper's
//! model does not assume one, and several adversary constructions exploit
//! reordering. Pending queues are kept in arrival order so that delivery
//! *by index* is deterministic and replayable.
//!
//! # Performance
//!
//! The engine sends every message at the current step time, so each
//! queue's `sent_at` sequence is nondecreasing in arrival order (a
//! `debug_assert` in [`Network::send`] enforces this). The queue exploits
//! that invariant: the *oldest* pending message is always the queue
//! front, so [`Network::oldest_sent_at`] and [`Network::oldest_index`]
//! are O(1) — schedulers consult them for every process on every step,
//! which used to cost a full O(queue) rescan each. Delivery by arbitrary
//! index is an order-statistics selection over a tombstoned arrival
//! buffer (a Fenwick tree of alive counts): O(log queue) instead of the
//! old `Vec::remove` O(queue) memmove, with an O(1) front fast path and
//! amortized O(1) compaction.

// sih-analysis: allow(index-reachable) — queues and per-link counters are n/n²-sized arrays
// indexed by ProcessId and link ids validated at construction; Fenwick offsets stay in range
// by the tree's size invariant (see ArrivalQueue docs).
use crate::automaton::{Envelope, MsgId};
use crate::fingerprint::Fnv64;
use sih_model::{AdversaryPlan, Armor, LinkFaultPlan, MutationKind, ProcessId, SendFate, Time};
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// A protocol message the mutation adversary knows how to corrupt.
///
/// Each protocol crate implements this for its message enum; the default
/// body makes every mutation inexpressible, so toy/test message types can
/// opt in with an empty `impl Corruptible for M {}`. Implementations must
/// be **pure**: the same `(self, kind, x)` always yields the same result,
/// or replay determinism breaks.
///
/// Only [`MutationKind::Flip`], [`MutationKind::Perturb`] and
/// [`MutationKind::ForgeAck`] are routed here — sender forgeries and
/// stale replays are envelope-level operations the [`Network`] performs
/// itself.
pub trait Corruptible: Sized {
    /// The corrupted message for mutation `kind` with deterministic
    /// parameter `x`, or `None` when the mutation cannot be expressed on
    /// this message (the send then crosses untouched).
    fn corrupt(&self, kind: MutationKind, x: u64) -> Option<Self> {
        let _ = (kind, x);
        None
    }
}

/// Monomorphized [`Corruptible::corrupt`] entry point, stored as a plain
/// fn pointer in [`AdversaryState`] so the generic [`Network`] send path
/// needs no `Corruptible` bound (only [`Network::set_adversary`] does).
fn corrupt_thunk<M: Corruptible>(m: &M, kind: MutationKind, x: u64) -> Option<M> {
    m.corrupt(kind, x)
}

/// A queued payload: owned for unicasts, ref-counted for fan-outs.
///
/// [`Network::broadcast`] enqueues **one** `Arc`'d payload across all
/// recipient queues — a fanned envelope costs one slot per recipient but
/// one payload total, instead of the per-recipient clone the old
/// representation paid. (`Arc`, not `Rc`: simulations move across sweep
/// worker threads, and every protocol message type is plain data, hence
/// `Sync`.)
#[derive(Debug)]
enum Payload<M> {
    Inline(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    #[inline]
    fn get(&self) -> &M {
        match self {
            Payload::Inline(m) => m,
            Payload::Shared(m) => m,
        }
    }
}

impl<M: Clone> Payload<M> {
    /// The owned payload: moves the inline case; for a shared one,
    /// unwraps the last reference or clones (one clone per *delivered*
    /// fanned message, instead of one per *sent* copy).
    fn into_owned(self) -> M {
        match self {
            Payload::Inline(m) => m,
            Payload::Shared(m) => Arc::try_unwrap(m).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

impl<M: Clone> Clone for Payload<M> {
    fn clone(&self) -> Self {
        match self {
            Payload::Inline(m) => Payload::Inline(m.clone()),
            // Cloning a queue (the explorer's child materialization)
            // keeps sharing the payload.
            Payload::Shared(m) => Payload::Shared(Arc::clone(m)),
        }
    }
}

/// A queued message plus the memoized fingerprint of its checker-visible
/// projection `(from, payload)`.
///
/// The hash is filled lazily on the first [`Network::fingerprint_into`]
/// that sees the envelope (hence the `Cell`: fingerprinting takes
/// `&self`). Payloads are immutable while queued and `Clone` copies them
/// unchanged, so a cached value stays valid for the clone too — the
/// exhaustive explorer hashes each message once per *send*, not once per
/// visited state. The destination is not stored: a slot lives in its
/// destination's queue.
#[derive(Clone, Debug)]
struct Slot<M> {
    id: MsgId,
    from: ProcessId,
    sent_at: Time,
    payload: Payload<M>,
    /// Whether the mutation adversary touched this envelope (corrupted
    /// payload, forged sender, or stale replay). Tampered deliveries are
    /// counted in `mutated_count` instead of `delivered_count`.
    tampered: bool,
    fp: Cell<Option<u64>>,
}

/// A borrowed view of a pending message (what [`Network::pending`]
/// yields). Like [`Envelope`], minus payload ownership — the queue may be
/// sharing one fan-out payload across many recipients.
#[derive(Clone, Copy, Debug)]
pub struct EnvelopeRef<'a, M> {
    /// Unique id of the message within the run.
    pub id: MsgId,
    /// The sender.
    pub from: ProcessId,
    /// The destination.
    pub to: ProcessId,
    /// The time of the sending step.
    pub sent_at: Time,
    /// The protocol payload.
    pub payload: &'a M,
}

/// One process's pending queue: arrival-ordered slots with tombstones.
///
/// Alive envelopes keep their arrival order; delivered ones leave `None`
/// tombstones that a Fenwick tree of alive counts skips in O(log n).
/// Tombstones are compacted away once they outnumber the alive messages,
/// so space and per-op cost stay amortized O(alive).
#[derive(Debug)]
struct ArrivalQueue<M> {
    /// Arrival-ordered slots; `None` marks a delivered message.
    slots: Vec<Option<Slot<M>>>,
    /// Fenwick tree over alive flags; `tree[i]` is node `i + 1`.
    tree: Vec<usize>,
    /// Position of the first alive slot (== `slots.len()` when empty).
    head: usize,
    /// Number of alive slots.
    alive: usize,
    /// Largest `sent_at` enqueued so far (monotonicity watermark).
    last_sent_at: Time,
}

// Manual Clone so `clone_from` (explorer child materialization) reuses
// the slot and Fenwick-tree allocations of the destination queue.
impl<M: Clone> Clone for ArrivalQueue<M> {
    fn clone(&self) -> Self {
        ArrivalQueue {
            slots: self.slots.clone(),
            tree: self.tree.clone(),
            head: self.head,
            alive: self.alive,
            last_sent_at: self.last_sent_at,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.slots.clone_from(&source.slots);
        self.tree.clone_from(&source.tree);
        self.head = source.head;
        self.alive = source.alive;
        self.last_sent_at = source.last_sent_at;
    }
}

impl<M> Default for ArrivalQueue<M> {
    fn default() -> Self {
        ArrivalQueue {
            slots: Vec::new(),
            tree: Vec::new(),
            head: 0,
            alive: 0,
            last_sent_at: Time::ZERO,
        }
    }
}

impl<M> ArrivalQueue<M> {
    fn len(&self) -> usize {
        self.alive
    }

    fn front(&self) -> Option<&Slot<M>> {
        if self.alive == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Alive slots in arrival order.
    fn iter(&self) -> impl Iterator<Item = &Slot<M>> {
        self.slots[self.head..].iter().flatten()
    }

    fn push(&mut self, slot: Slot<M>) {
        debug_assert!(
            slot.sent_at >= self.last_sent_at,
            "send times must be nondecreasing per queue ({:?} after {:?})",
            slot.sent_at,
            self.last_sent_at,
        );
        self.last_sent_at = slot.sent_at;
        if self.alive == 0 {
            // The queue may be all tombstones; restart it so `head` and
            // the tree stay small.
            self.slots.clear();
            self.tree.clear();
            self.head = 0;
        }
        self.slots.push(Some(slot));
        self.fenwick_append_one();
        self.alive += 1;
    }

    /// Removes the `index`-th alive slot (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    fn remove(&mut self, index: usize) -> Slot<M> {
        assert!(index < self.alive, "delivery index {index} out of range");
        let pos = if index == 0 { self.head } else { self.select(index) };
        let slot = self.slots[pos]
            .take()
            .expect("invariant: Fenwick selection only ever lands on alive (non-tombstone) slots");
        self.fenwick_sub_one(pos + 1);
        self.alive -= 1;
        if pos == self.head {
            while self.head < self.slots.len() && self.slots[self.head].is_none() {
                self.head += 1;
            }
        }
        if self.slots.len() >= 64 && self.alive * 2 < self.slots.len() {
            self.compact();
        }
        slot
    }

    /// Drops tombstones, rebuilding the tree over the alive prefix.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.head = 0;
        // All slots alive ⇒ node `i` covers exactly `lowbit(i)` ones.
        self.tree.clear();
        self.tree.extend((1..=self.slots.len()).map(|i| i & i.wrapping_neg()));
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.tree.clear();
        self.head = 0;
        self.alive = 0;
        self.last_sent_at = Time::ZERO;
    }

    /// Sum of alive flags over slot positions `1..=i` (1-indexed).
    fn fenwick_prefix(&self, mut i: usize) -> usize {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Appends one slot with alive flag 1 as Fenwick node `len + 1`.
    fn fenwick_append_one(&mut self) {
        let pos = self.tree.len() + 1;
        let lowbit = pos & pos.wrapping_neg();
        let below = self.fenwick_prefix(pos - 1) - self.fenwick_prefix(pos - lowbit);
        self.tree.push(below + 1);
    }

    /// Subtracts 1 from the alive flag at slot position `i` (1-indexed).
    fn fenwick_sub_one(&mut self, mut i: usize) {
        while i <= self.tree.len() {
            self.tree[i - 1] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Slot position of the `k`-th alive envelope (0-indexed) by Fenwick
    /// binary descent: the largest prefix with fewer than `k + 1` ones.
    fn select(&self, k: usize) -> usize {
        debug_assert!(k < self.alive);
        let mut pos = 0;
        let mut remaining = k + 1;
        let mut mask = 1usize << (usize::BITS - 1 - self.tree.len().leading_zeros());
        while mask > 0 {
            let next = pos + mask;
            if next <= self.tree.len() && self.tree[next - 1] < remaining {
                remaining -= self.tree[next - 1];
                pos = next;
            }
            mask >>= 1;
        }
        pos
    }
}

/// Installed link-fault adversary: the plan plus the per-directed-link
/// send counters that make its decisions a pure function of history.
///
/// Boxed and optional on [`Network`] so the reliable (default) case pays
/// one pointer of space and a null check per send.
#[derive(Debug, PartialEq, Eq)]
struct LinkFaultState {
    plan: LinkFaultPlan,
    /// `sends[src * n + dst]`: messages sent so far on that directed link
    /// (counting every attempt, delivered or dropped).
    sends: Vec<u64>,
}

impl Clone for LinkFaultState {
    fn clone(&self) -> Self {
        LinkFaultState { plan: self.plan.clone(), sends: self.sends.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.plan.clone_from(&source.plan);
        self.sends.clone_from(&source.sends);
    }
}

/// Installed message-mutation adversary: the plan, the armor level of the
/// honest processes, the per-directed-link mutation counters, and the
/// per-link stale-payload stash that feeds [`MutationKind::Replay`].
///
/// Boxed and optional on [`Network`] like [`LinkFaultState`]: the honest
/// (default) case pays one pointer of space and a null check per send.
struct AdversaryState<M> {
    plan: AdversaryPlan,
    armor: Armor,
    /// `sends[src * n + dst]`: sends consulted so far on that directed
    /// link (independent of the link-fault counters; only sends that
    /// survive a drop window reach the adversary).
    sends: Vec<u64>,
    /// `stash[src * n + dst]`: the most recent *untampered* payload sent
    /// on that link — what a stale replay re-injects. Only maintained for
    /// links some `Replay` window targets (see `stash_links`); consumed
    /// originals never re-enter the stash, so a replayed envelope cannot
    /// be resurrected a second time by the stash itself (retransmission
    /// layers like `Stubborn` stay the only legitimate resenders).
    stash: Vec<Option<M>>,
    /// `stash_links[link]`: whether any replay window targets the link.
    stash_links: Vec<bool>,
    /// Monomorphized [`Corruptible::corrupt`] (see [`corrupt_thunk`]).
    corrupt: fn(&M, MutationKind, u64) -> Option<M>,
}

impl<M: Clone> Clone for AdversaryState<M> {
    fn clone(&self) -> Self {
        AdversaryState {
            plan: self.plan.clone(),
            armor: self.armor,
            sends: self.sends.clone(),
            stash: self.stash.clone(),
            stash_links: self.stash_links.clone(),
            corrupt: self.corrupt,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.plan.clone_from(&source.plan);
        self.armor = source.armor;
        self.sends.clone_from(&source.sends);
        self.stash.clone_from(&source.stash);
        self.stash_links.clone_from(&source.stash_links);
        self.corrupt = source.corrupt;
    }
}

impl<M: fmt::Debug> fmt::Debug for AdversaryState<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversaryState")
            .field("plan", &self.plan)
            .field("armor", &self.armor)
            .field("sends", &self.sends)
            .field("stash", &self.stash)
            .finish_non_exhaustive()
    }
}

/// The in-flight message state of a run.
#[derive(Debug)]
pub struct Network<M> {
    /// `queues[to]`: messages awaiting delivery at `to`, in arrival order.
    queues: Vec<ArrivalQueue<M>>,
    next_id: u64,
    sent_count: u64,
    delivered_count: u64,
    dropped_count: u64,
    duplicated_count: u64,
    mutated_count: u64,
    forged_count: u64,
    armored_count: u64,
    /// The link-fault adversary, if one is installed (`None` = reliable).
    faults: Option<Box<LinkFaultState>>,
    /// The message-mutation adversary, if one is installed
    /// (`None` = authenticated channels, the paper's model).
    adversary: Option<Box<AdversaryState<M>>>,
    /// Empty→nonempty queue transitions since the last drain, when wake
    /// tracking is on (`None` = off, the default — see
    /// [`Network::set_wake_tracking`]).
    woken: Option<Vec<ProcessId>>,
}

// Manual Clone so `clone_from` recycles every per-destination queue.
impl<M: Clone> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            queues: self.queues.clone(),
            next_id: self.next_id,
            sent_count: self.sent_count,
            delivered_count: self.delivered_count,
            dropped_count: self.dropped_count,
            duplicated_count: self.duplicated_count,
            mutated_count: self.mutated_count,
            forged_count: self.forged_count,
            armored_count: self.armored_count,
            faults: self.faults.clone(),
            adversary: self.adversary.clone(),
            woken: self.woken.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.queues.clone_from(&source.queues);
        self.next_id = source.next_id;
        self.sent_count = source.sent_count;
        self.delivered_count = source.delivered_count;
        self.dropped_count = source.dropped_count;
        self.duplicated_count = source.duplicated_count;
        self.mutated_count = source.mutated_count;
        self.forged_count = source.forged_count;
        self.armored_count = source.armored_count;
        match (&mut self.faults, &source.faults) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.adversary, &source.adversary) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
        self.woken.clone_from(&source.woken);
    }
}

impl<M: fmt::Debug> Network<M> {
    /// Feeds the checker-visible network state into a state fingerprint:
    /// per destination, the pending queue as a **multiset** of
    /// `(sender, payload)` pairs (an order-insensitive wrapping sum of
    /// per-envelope hashes) plus its length, then the global counters.
    /// Message ids and `sent_at` stamps are harness metadata — excluded,
    /// so interleavings that merely reorder equal sends coincide.
    ///
    /// The multiset view is faithful for the explorer because delivery
    /// menus are enumerated in canonical content order (the sorted
    /// [`Network::pending_envelope_fps`]): even a finite delivery cap
    /// samples a content-order prefix the multiset determines. An
    /// order-sensitive sibling, [`Network::fingerprint_ordered_into`],
    /// exists for callers that distinguish arrival order.
    pub(crate) fn fingerprint_into(&self, h: &mut Fnv64) {
        for q in &self.queues {
            h.write_usize(q.len());
            h.write_u64(q.multiset_fingerprint());
        }
        self.counters_into(h);
    }

    /// Order-sensitive variant of [`Network::fingerprint_into`]: each
    /// pending queue is hashed as the exact arrival-order **sequence** of
    /// per-envelope hashes instead of a multiset, so two equal sequence
    /// fingerprints mean the queues agree envelope-for-envelope. Uses
    /// the same memoized per-[`Slot`] hashes as the multiset view, so
    /// the per-send hashing cost is shared.
    pub(crate) fn fingerprint_ordered_into(&self, h: &mut Fnv64) {
        for q in &self.queues {
            h.write_usize(q.len());
            for s in q.iter() {
                h.write_u64(s.envelope_fp());
            }
        }
        self.counters_into(h);
    }

    /// The envelope fingerprints of the messages pending at `to`, in
    /// arrival (alive-index) order. The explorer sorts these to build
    /// its canonical content-ordered delivery menu, which is what lets
    /// it dedup on the order-insensitive multiset fingerprint even with
    /// sleep sets and delivery caps on (see `crate::explore`). Uses the
    /// same memoized per-[`Slot`] hashes as the fingerprint flavors.
    pub(crate) fn pending_envelope_fps(&self, to: ProcessId) -> impl Iterator<Item = u64> + '_ {
        self.queues[to.index()].iter().map(Slot::envelope_fp)
    }

    /// The global-counter and fault-state tail both fingerprint flavors
    /// share.
    fn counters_into(&self, h: &mut Fnv64) {
        h.write_u64(self.sent_count);
        h.write_u64(self.delivered_count);
        // Fault state is hashed only when an adversary is installed, so
        // reliable-network fingerprints are bit-identical to what they
        // were before link faults existed.
        if let Some(state) = &self.faults {
            h.write_u64(0x4C46); // "LF" tag separating the fault section
            h.write_u64(self.dropped_count);
            h.write_u64(self.duplicated_count);
            for &k in &state.sends {
                h.write_u64(k);
            }
            h.write_debug(&state.plan);
        }
        // Mirror: adversary state is hashed only when installed, so both
        // reliable and faulty-but-honest fingerprints are unchanged.
        if let Some(adv) = &self.adversary {
            h.write_u64(0x425A); // "BZ" tag separating the adversary section
            h.write_u64(self.mutated_count);
            h.write_u64(self.forged_count);
            h.write_u64(self.armored_count);
            for &k in &adv.sends {
                h.write_u64(k);
            }
            for s in &adv.stash {
                match s {
                    None => h.write_u64(0),
                    Some(m) => {
                        h.write_u64(1);
                        h.write_debug(m);
                    }
                }
            }
            h.write_debug(&adv.plan);
            h.write_u64(u64::from(adv.armor.rung()));
        }
    }
}

impl<M: fmt::Debug> Slot<M> {
    /// The `(sender, payload)` hash of this envelope, memoized in the
    /// slot on first use (and carried across clones — see [`Slot`]).
    /// Shared (fanned) payloads hash their `Debug` rendering just like
    /// inline ones, so the batched representation leaves every
    /// fingerprint bit-identical.
    fn envelope_fp(&self) -> u64 {
        self.fp.get().unwrap_or_else(|| {
            let mut eh = Fnv64::new();
            eh.write_u64(u64::from(self.from.0));
            eh.write_debug(self.payload.get());
            let fp = eh.finish();
            self.fp.set(Some(fp));
            fp
        })
    }
}

impl<M: fmt::Debug> ArrivalQueue<M> {
    /// Wrapping sum of the alive slots' memoized envelope hashes.
    fn multiset_fingerprint(&self) -> u64 {
        self.slots[self.head..]
            .iter()
            .flatten()
            .fold(0u64, |acc, s| acc.wrapping_add(s.envelope_fp()))
    }
}

impl<M: Clone> Network<M> {
    /// An empty network over `n` processes.
    pub fn new(n: usize) -> Self {
        Network {
            queues: (0..n).map(|_| ArrivalQueue::default()).collect(),
            next_id: 0,
            sent_count: 0,
            delivered_count: 0,
            dropped_count: 0,
            duplicated_count: 0,
            mutated_count: 0,
            forged_count: 0,
            armored_count: 0,
            faults: None,
            adversary: None,
            woken: None,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.queues.len()
    }

    /// Empties the network for reuse, keeping queue allocations. Also
    /// uninstalls any link-fault plan and any mutation adversary — a
    /// pooled simulation starts reliable and honest until the next
    /// [`Network::set_link_faults`] / [`Network::set_adversary`].
    pub fn reset(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.next_id = 0;
        self.sent_count = 0;
        self.delivered_count = 0;
        self.dropped_count = 0;
        self.duplicated_count = 0;
        self.mutated_count = 0;
        self.forged_count = 0;
        self.armored_count = 0;
        self.faults = None;
        self.adversary = None;
        self.woken = None;
    }

    /// Installs a link-fault plan; subsequent sends consult it. Per-link
    /// send counters start at zero.
    ///
    /// # Panics
    ///
    /// Panics if the plan's process count differs from the network's.
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) {
        assert_eq!(plan.n(), self.n(), "plan size must match the network");
        let links = self.n() * self.n();
        self.faults = Some(Box::new(LinkFaultState { plan, sends: vec![0; links] }));
    }

    /// The installed link-fault plan, if any.
    pub fn link_fault_plan(&self) -> Option<&LinkFaultPlan> {
        self.faults.as_ref().map(|s| &s.plan)
    }

    /// Installs a message-mutation adversary; subsequent sends consult
    /// its plan, with `armor` deciding which attack classes the honest
    /// processes neutralize. Per-link mutation counters start at zero.
    ///
    /// # Panics
    ///
    /// Panics if the plan's process count differs from the network's.
    pub fn set_adversary(&mut self, plan: AdversaryPlan, armor: Armor)
    where
        M: Corruptible,
    {
        assert_eq!(plan.n(), self.n(), "plan size must match the network");
        let n = self.n();
        let links = n * n;
        let mut stash_links = vec![false; links];
        for w in plan.windows() {
            if w.kind == MutationKind::Replay {
                stash_links[w.src.index() * n + w.dst.index()] = true;
            }
        }
        self.adversary = Some(Box::new(AdversaryState {
            plan,
            armor,
            sends: vec![0; links],
            stash: (0..links).map(|_| None).collect(),
            stash_links,
            corrupt: corrupt_thunk::<M>,
        }));
    }

    /// The installed adversary plan, if any.
    pub fn adversary_plan(&self) -> Option<&AdversaryPlan> {
        self.adversary.as_ref().map(|s| &s.plan)
    }

    /// The armor level of the installed adversary, if any.
    pub fn armor(&self) -> Option<Armor> {
        self.adversary.as_ref().map(|s| s.armor)
    }

    /// Uninstalls the mutation adversary (counters and queues are left
    /// untouched), returning its plan and armor if one was installed.
    /// The differential armor suite uses this to compare terminal
    /// fingerprints against adversary-free baselines.
    pub fn take_adversary(&mut self) -> Option<(AdversaryPlan, Armor)> {
        self.adversary.take().map(|s| (s.plan, s.armor))
    }

    /// Consults the installed adversary for one send `from -> to` at
    /// `sent_at` that survived the link-fault layer. Returns `None` when
    /// the envelope crosses untouched, or `Some((payload, sender))` with
    /// the corrupted payload and (possibly forged) sender id when it was
    /// tampered with. Counter side effects: `armored_count` for
    /// neutralized actions, `forged_count` for sender/ack forgeries, and
    /// the per-link stash for future stale replays (clean sends only —
    /// consumed originals are gone for good).
    fn consult_adversary(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        sent_at: Time,
        payload: &M,
    ) -> Option<(M, ProcessId)> {
        let n = self.queues.len();
        let adv = self.adversary.as_deref_mut()?;
        let link = from.index() * n + to.index();
        let k = adv.sends[link];
        adv.sends[link] += 1;
        let mut result: Option<(M, ProcessId)> = None;
        if let Some((kind, x)) = adv.plan.action(from, to, sent_at, k) {
            if adv.armor.defeats(kind.class()) {
                self.armored_count += 1;
            } else {
                match kind {
                    MutationKind::ForgeSender => {
                        // Forge `x mod n`, skipping the true sender (a
                        // one-process system has nobody to impersonate).
                        if n > 1 {
                            let mut f = (x % n as u64) as u32;
                            if f == from.0 {
                                f = (f + 1) % n as u32;
                            }
                            self.forged_count += 1;
                            result = Some((payload.clone(), ProcessId(f)));
                        }
                    }
                    MutationKind::Replay => {
                        if let Some(stale) = &adv.stash[link] {
                            result = Some((stale.clone(), from));
                        }
                    }
                    MutationKind::Flip | MutationKind::Perturb | MutationKind::ForgeAck => {
                        if let Some(m) = (adv.corrupt)(payload, kind, x) {
                            if kind == MutationKind::ForgeAck {
                                self.forged_count += 1;
                            }
                            result = Some((m, from));
                        }
                    }
                }
            }
        }
        if result.is_none() && adv.stash_links[link] {
            adv.stash[link] = Some(payload.clone());
        }
        result
    }

    /// Enqueues a message; returns its id.
    ///
    /// Send times must be nondecreasing per destination queue (the
    /// engine always sends at the current step time, which only grows);
    /// the oldest-message accessors rely on this invariant.
    ///
    /// When a [`LinkFaultPlan`] is installed the plan decides the fate of
    /// the send — deterministically, from the plan plus the per-link send
    /// counter, never from ambient randomness. A dropped message still
    /// gets an id (the sender cannot tell) but never enters a queue; a
    /// duplicated one enqueues extra copies **sharing** the id, so
    /// receive-side dedup can recognize them. Every copy, enqueued or
    /// dropped, counts in `sent_count`, keeping the invariant
    /// `sent == delivered + dropped + in_flight` exact at all times.
    pub fn send(&mut self, from: ProcessId, to: ProcessId, sent_at: Time, payload: M) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        let fate = match &mut self.faults {
            None => SendFate::Deliver { copies: 1 },
            Some(state) => {
                let link = from.index() * self.queues.len() + to.index();
                let k = state.sends[link];
                state.sends[link] += 1;
                state.plan.fate(from, to, sent_at, k)
            }
        };
        match fate {
            SendFate::Dropped => {
                self.sent_count += 1;
                self.dropped_count += 1;
            }
            SendFate::Deliver { copies } => {
                self.sent_count += copies;
                self.duplicated_count += copies - 1;
                let (payload, from, tampered) =
                    match self.consult_adversary(from, to, sent_at, &payload) {
                        Some((m, f)) => (m, f, true),
                        None => (payload, from, false),
                    };
                let queue = &mut self.queues[to.index()];
                let was_empty = queue.len() == 0;
                for _ in 1..copies {
                    let payload = Payload::Inline(payload.clone());
                    queue.push(Slot { id, from, sent_at, payload, fp: Cell::new(None), tampered });
                }
                // The last copy moves the payload: the reliable fast path
                // (copies == 1) clones nothing.
                let payload = Payload::Inline(payload);
                queue.push(Slot { id, from, sent_at, payload, fp: Cell::new(None), tampered });
                if was_empty {
                    if let Some(tracked) = &mut self.woken {
                        tracked.push(to);
                    }
                }
            }
        }
        id
    }

    /// Enqueues one payload to every process in `0..n`, minus `except` —
    /// the batched form of a `send to all`.
    ///
    /// Exactly equivalent to calling [`Network::send`] once per recipient
    /// in increasing id order (ids are assigned in that order, link-fault
    /// fates are consulted per recipient, every counter moves the same
    /// way), except that all enqueued copies **share one ref-counted
    /// payload** instead of cloning it per recipient. Returns the first
    /// assigned id; recipient `j` (in expansion order) got id
    /// `first + j`, dropped or not.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the network size.
    pub fn broadcast(
        &mut self,
        from: ProcessId,
        sent_at: Time,
        payload: M,
        n: usize,
        except: Option<ProcessId>,
    ) -> MsgId {
        assert!(n <= self.queues.len(), "broadcast fan-out exceeds the network size");
        let first = MsgId(self.next_id);
        let shared = Arc::new(payload);
        for i in 0..n as u32 {
            let to = ProcessId(i);
            if Some(to) == except {
                continue;
            }
            let id = MsgId(self.next_id);
            self.next_id += 1;
            let fate = match &mut self.faults {
                None => SendFate::Deliver { copies: 1 },
                Some(state) => {
                    let link = from.index() * self.queues.len() + to.index();
                    let k = state.sends[link];
                    state.sends[link] += 1;
                    state.plan.fate(from, to, sent_at, k)
                }
            };
            match fate {
                SendFate::Dropped => {
                    self.sent_count += 1;
                    self.dropped_count += 1;
                }
                SendFate::Deliver { copies } => {
                    self.sent_count += copies;
                    self.duplicated_count += copies - 1;
                    let mutated = self.consult_adversary(from, to, sent_at, &shared);
                    let queue = &mut self.queues[to.index()];
                    let was_empty = queue.len() == 0;
                    match mutated {
                        Some((m, f)) => {
                            // A tampered recipient leaves the shared batch:
                            // its copies carry the corrupted payload inline.
                            for _ in 1..copies {
                                queue.push(Slot {
                                    id,
                                    from: f,
                                    sent_at,
                                    payload: Payload::Inline(m.clone()),
                                    fp: Cell::new(None),
                                    tampered: true,
                                });
                            }
                            queue.push(Slot {
                                id,
                                from: f,
                                sent_at,
                                payload: Payload::Inline(m),
                                fp: Cell::new(None),
                                tampered: true,
                            });
                        }
                        None => {
                            for _ in 0..copies {
                                queue.push(Slot {
                                    id,
                                    from,
                                    sent_at,
                                    payload: Payload::Shared(Arc::clone(&shared)),
                                    fp: Cell::new(None),
                                    tampered: false,
                                });
                            }
                        }
                    }
                    if was_empty {
                        if let Some(tracked) = &mut self.woken {
                            tracked.push(to);
                        }
                    }
                }
            }
        }
        first
    }

    /// Turns empty→nonempty queue-transition tracking on or off (off by
    /// default; turning it on clears the log). The event-driven runner
    /// uses this to learn which processes a step woke without scanning
    /// all `n` queues.
    pub fn set_wake_tracking(&mut self, on: bool) {
        self.woken = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the queues that transitioned empty→nonempty since the last
    /// drain (in send order; a queue appears once per transition).
    pub fn drain_woken(&mut self, mut f: impl FnMut(ProcessId)) {
        if let Some(tracked) = &mut self.woken {
            // `f` must not touch the network (it only marks worklist
            // entries), so a temporary take keeps the borrow checker and
            // the allocation both happy.
            let mut log = std::mem::take(tracked);
            for p in log.drain(..) {
                f(p);
            }
            if let Some(tracked) = &mut self.woken {
                *tracked = log;
            }
        }
    }

    /// Number of messages pending at `to`.
    pub fn pending_count(&self, to: ProcessId) -> usize {
        self.queues[to.index()].len()
    }

    /// The pending messages at `to`, in arrival order (oldest first).
    /// Yields borrowed views — fanned messages share one stored payload.
    pub fn pending(&self, to: ProcessId) -> impl Iterator<Item = EnvelopeRef<'_, M>> {
        self.queues[to.index()].iter().map(move |s| EnvelopeRef {
            id: s.id,
            from: s.from,
            to,
            sent_at: s.sent_at,
            payload: s.payload.get(),
        })
    }

    /// Send time of the oldest message pending at `to`, if any — used by
    /// fair schedulers to bound delivery delay. O(1): send times are
    /// nondecreasing, so the queue front is the oldest message.
    pub fn oldest_sent_at(&self, to: ProcessId) -> Option<Time> {
        self.queues[to.index()].front().map(|s| s.sent_at)
    }

    /// Index (into the arrival-ordered pending queue) of the oldest
    /// message pending at `to`. O(1): always the front, by monotonicity
    /// (ties broken towards the front, as before the queue rewrite).
    pub fn oldest_index(&self, to: ProcessId) -> Option<usize> {
        if self.queues[to.index()].len() == 0 {
            None
        } else {
            Some(0)
        }
    }

    /// Removes and returns the `index`-th pending message at `to`,
    /// materializing an owned [`Envelope`] (shared fan-out payloads are
    /// cloned out at most once per delivery; the last delivery of a batch
    /// moves the payload).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn deliver(&mut self, to: ProcessId, index: usize) -> Envelope<M> {
        let slot = self.queues[to.index()].remove(index);
        // Tampered envelopes count as `mutated`, not `delivered`, keeping
        // `sent == delivered + dropped + mutated + in_flight` exact.
        if slot.tampered {
            self.mutated_count += 1;
        } else {
            self.delivered_count += 1;
        }
        Envelope {
            id: slot.id,
            from: slot.from,
            to,
            sent_at: slot.sent_at,
            payload: slot.payload.into_owned(),
        }
    }

    /// Total messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.sent_count
    }

    /// Total messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Total messages the link-fault plan dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped_count
    }

    /// Total *extra* copies the link-fault plan enqueued so far (each
    /// duplicate copy beyond a send's first).
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated_count
    }

    /// Total tampered envelopes removed from the queues so far. A
    /// tampered delivery counts here *instead of* in `delivered_count`,
    /// so `sent == delivered + dropped + mutated + in_flight` stays
    /// exact with or without an adversary.
    pub fn mutated_count(&self) -> u64 {
        self.mutated_count
    }

    /// Total sends on which the adversary forged provenance (a fake
    /// sender id or a fabricated quorum ack). Counted at send time; a
    /// forged envelope also counts in `mutated_count` once delivered.
    pub fn forged_count(&self) -> u64 {
        self.forged_count
    }

    /// Total adversary actions neutralized by the installed armor rung
    /// (the send crossed untouched).
    pub fn armored_count(&self) -> u64 {
        self.armored_count
    }

    /// Total messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(ArrivalQueue::len).sum()
    }

    /// Approximate heap usage of the queue structures in bytes
    /// (capacity-based; payload-owned heap data is not counted — shared
    /// fan-out payloads would otherwise be multiply counted).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.queues.capacity() * size_of::<ArrivalQueue<M>>()
            + self
                .queues
                .iter()
                .map(|q| {
                    q.slots.capacity() * size_of::<Option<Slot<M>>>()
                        + q.tree.capacity() * size_of::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_assigns_sequential_ids() {
        let mut net: Network<u8> = Network::new(2);
        let a = net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        let b = net.send(ProcessId(1), ProcessId(0), Time(2), 20);
        assert_eq!(a, MsgId(0));
        assert_eq!(b, MsgId(1));
        assert_eq!(net.sent_count(), 2);
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    fn pending_queues_keep_arrival_order() {
        let mut net: Network<u8> = Network::new(2);
        net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        net.send(ProcessId(0), ProcessId(1), Time(2), 20);
        let payloads: Vec<u8> = net.pending(ProcessId(1)).map(|e| *e.payload).collect();
        assert_eq!(payloads, vec![10, 20]);
        assert_eq!(net.pending_count(ProcessId(1)), 2);
        assert_eq!(net.pending_count(ProcessId(0)), 0);
    }

    #[test]
    fn deliver_removes_by_index() {
        let mut net: Network<u8> = Network::new(2);
        net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        net.send(ProcessId(0), ProcessId(1), Time(2), 20);
        let e = net.deliver(ProcessId(1), 1);
        assert_eq!(e.payload, 20);
        assert_eq!(net.pending_count(ProcessId(1)), 1);
        assert_eq!(net.delivered_count(), 1);
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn oldest_tracking() {
        let mut net: Network<u8> = Network::new(3);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), None);
        assert_eq!(net.oldest_index(ProcessId(2)), None);
        net.send(ProcessId(0), ProcessId(2), Time(3), 1);
        net.send(ProcessId(1), ProcessId(2), Time(3), 2);
        net.send(ProcessId(1), ProcessId(2), Time(5), 3);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), Some(Time(3)));
        assert_eq!(net.oldest_index(ProcessId(2)), Some(0));
        // Delivering the front exposes the next-oldest.
        net.deliver(ProcessId(2), 0);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), Some(Time(3)));
        net.deliver(ProcessId(2), 0);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), Some(Time(5)));
        net.deliver(ProcessId(2), 0);
        assert_eq!(net.oldest_sent_at(ProcessId(2)), None);
        assert_eq!(net.oldest_index(ProcessId(2)), None);
    }

    #[test]
    fn reset_restores_a_fresh_network() {
        let mut net: Network<u8> = Network::new(2);
        net.send(ProcessId(0), ProcessId(1), Time(4), 9);
        net.deliver(ProcessId(1), 0);
        net.send(ProcessId(0), ProcessId(1), Time(9), 8);
        net.reset();
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.sent_count(), 0);
        assert_eq!(net.delivered_count(), 0);
        // Ids restart and earlier (smaller) send times are legal again.
        let id = net.send(ProcessId(1), ProcessId(0), Time(1), 7);
        assert_eq!(id, MsgId(0));
        assert_eq!(net.oldest_sent_at(ProcessId(0)), Some(Time(1)));
    }

    /// Differential check against the naive `Vec` queue the rewrite
    /// replaced: arbitrary interleavings of monotonic sends and
    /// index-based deliveries produce identical envelopes, orders and
    /// oldest-message answers.
    #[test]
    fn queue_rewrite_preserves_delivery_semantics() {
        // A tiny deterministic LCG drives the interleaving.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };

        let mut net: Network<u32> = Network::new(1);
        let mut reference: Vec<(u64, Time, u32)> = Vec::new(); // (id, sent_at, payload)
        let to = ProcessId(0);
        let mut clock = 0u64;
        let mut payload = 0u32;

        for round in 0..5_000 {
            let send_burst = next() % 4;
            for _ in 0..send_burst {
                clock += (next() % 2) as u64; // nondecreasing, with ties
                payload += 1;
                let id = net.send(to, to, Time(clock), payload);
                reference.push((id.0, Time(clock), payload));
            }
            // Model answers, from the naive representation.
            assert_eq!(net.pending_count(to), reference.len(), "round {round}");
            assert_eq!(net.oldest_sent_at(to), reference.iter().map(|&(_, t, _)| t).min(),);
            assert_eq!(net.oldest_index(to), (0..reference.len()).min_by_key(|&i| reference[i].1),);
            let seen: Vec<u32> = net.pending(to).map(|e| *e.payload).collect();
            let expected: Vec<u32> = reference.iter().map(|&(_, _, p)| p).collect();
            assert_eq!(seen, expected, "round {round}");

            if !reference.is_empty() && next() % 3 > 0 {
                let idx = next() % reference.len();
                let env = net.deliver(to, idx);
                let (id, sent_at, pl) = reference.remove(idx);
                assert_eq!(env.id.0, id, "round {round}");
                assert_eq!(env.sent_at, sent_at);
                assert_eq!(env.payload, pl);
            }
        }
    }

    #[test]
    fn link_faults_drop_and_duplicate_deterministically() {
        use sih_model::LinkFaultPlan;
        let plan = LinkFaultPlan::builder(2)
            .drop_every(ProcessId(0), ProcessId(1), 2, 0, Time(0), None)
            .duplicate_every(ProcessId(1), ProcessId(0), 1, 0, Time(0), None)
            .build();
        let mut net: Network<u8> = Network::new(2);
        net.set_link_faults(plan);
        // 0 -> 1: every even-numbered send on the link is dropped.
        net.send(ProcessId(0), ProcessId(1), Time(1), 10); // k=0, dropped
        net.send(ProcessId(0), ProcessId(1), Time(1), 11); // k=1, delivered
        net.send(ProcessId(0), ProcessId(1), Time(2), 12); // k=2, dropped
        assert_eq!(net.pending_count(ProcessId(1)), 1);
        assert_eq!(net.dropped_count(), 2);
        // 1 -> 0: every send is duplicated; the copies share one id.
        let id = net.send(ProcessId(1), ProcessId(0), Time(3), 20);
        assert_eq!(net.pending_count(ProcessId(0)), 2);
        assert_eq!(net.duplicated_count(), 1);
        let ids: Vec<MsgId> = net.pending(ProcessId(0)).map(|e| e.id).collect();
        assert_eq!(ids, vec![id, id]);
        // The invariant holds with every copy counted as sent.
        assert_eq!(
            net.sent_count(),
            net.delivered_count() + net.dropped_count() + net.in_flight() as u64
        );
        assert_eq!(net.sent_count(), 5);
    }

    #[test]
    fn reset_uninstalls_the_fault_plan() {
        use sih_model::LinkFaultPlan;
        let mut net: Network<u8> = Network::new(2);
        net.set_link_faults(
            LinkFaultPlan::builder(2).drop_link(ProcessId(0), ProcessId(1), Time(0), None).build(),
        );
        net.send(ProcessId(0), ProcessId(1), Time(1), 1);
        assert_eq!(net.dropped_count(), 1);
        net.reset();
        assert!(net.link_fault_plan().is_none());
        assert_eq!(net.dropped_count(), 0);
        net.send(ProcessId(0), ProcessId(1), Time(1), 1);
        assert_eq!(net.pending_count(ProcessId(1)), 1);
    }

    #[test]
    fn fault_free_fingerprints_ignore_the_fault_machinery() {
        use crate::fingerprint::Fnv64;
        use sih_model::LinkFaultPlan;
        let fp = |net: &Network<u8>| {
            let mut h = Fnv64::new();
            net.fingerprint_into(&mut h);
            h.finish()
        };
        let mut plain: Network<u8> = Network::new(2);
        plain.send(ProcessId(0), ProcessId(1), Time(1), 5);
        let mut faulty: Network<u8> = Network::new(2);
        // An installed plan whose windows never fire still changes the
        // fingerprint domain (the plan is part of the adversary state)...
        faulty.set_link_faults(LinkFaultPlan::reliable(2));
        faulty.send(ProcessId(0), ProcessId(1), Time(1), 5);
        assert_ne!(fp(&plain), fp(&faulty));
        // ...but two identically-faulted histories coincide.
        let mut faulty2: Network<u8> = Network::new(2);
        faulty2.set_link_faults(LinkFaultPlan::reliable(2));
        faulty2.send(ProcessId(0), ProcessId(1), Time(1), 5);
        assert_eq!(fp(&faulty), fp(&faulty2));
    }

    /// Test payload: `corrupt` arithmetic chosen so every mutation kind
    /// is observable and total (never `None`) except stale replays,
    /// which the network serves from its stash.
    impl Corruptible for u8 {
        fn corrupt(&self, kind: MutationKind, x: u64) -> Option<u8> {
            match kind {
                MutationKind::Flip => Some(!*self),
                MutationKind::Perturb => Some(self.wrapping_add(x as u8)),
                MutationKind::ForgeAck => Some(x as u8),
                MutationKind::Replay | MutationKind::ForgeSender => None,
            }
        }
    }

    #[test]
    fn adversary_mutates_deterministically_and_invariant_holds() {
        use sih_model::AdversaryPlan;
        let plan = AdversaryPlan::builder(2)
            .perturb(ProcessId(0), ProcessId(1), 100, Time(0), None)
            .build();
        let run = || {
            let mut net: Network<u8> = Network::new(2);
            net.set_adversary(plan.clone(), Armor::NONE);
            net.send(ProcessId(0), ProcessId(1), Time(1), 10); // perturbed
            net.send(ProcessId(1), ProcessId(0), Time(1), 20); // other link: clean
            let a = net.deliver(ProcessId(1), 0);
            let b = net.deliver(ProcessId(0), 0);
            (a.payload, b.payload, net.mutated_count(), net.delivered_count())
        };
        assert_eq!(run(), (110, 20, 1, 1));
        assert_eq!(run(), run());
        // The extended invariant: mutated deliveries are not `delivered`.
        let mut net: Network<u8> = Network::new(2);
        net.set_adversary(plan, Armor::NONE);
        net.send(ProcessId(0), ProcessId(1), Time(1), 1);
        net.send(ProcessId(0), ProcessId(1), Time(1), 2);
        net.deliver(ProcessId(1), 0);
        assert_eq!(
            net.sent_count(),
            net.delivered_count()
                + net.dropped_count()
                + net.mutated_count()
                + net.in_flight() as u64
        );
    }

    #[test]
    fn armor_neutralizes_defeated_classes_at_the_send() {
        use sih_model::AdversaryPlan;
        let plan =
            AdversaryPlan::builder(2).flip(ProcessId(0), ProcessId(1), Time(0), None).build();
        let mut net: Network<u8> = Network::new(2);
        net.set_adversary(plan, Armor::DIGEST); // rung 2 defeats Tamper
        net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        let e = net.deliver(ProcessId(1), 0);
        assert_eq!(e.payload, 10); // crossed untouched
        assert_eq!(net.armored_count(), 1);
        assert_eq!(net.mutated_count(), 0);
        assert_eq!(net.delivered_count(), 1);
    }

    #[test]
    fn forged_sender_rewrites_the_envelope_provenance() {
        use sih_model::AdversaryPlan;
        let plan = AdversaryPlan::builder(3)
            .forge_sender(ProcessId(0), ProcessId(1), 2, Time(0), None)
            .build();
        let mut net: Network<u8> = Network::new(3);
        net.set_adversary(plan, Armor::NONE);
        net.send(ProcessId(0), ProcessId(1), Time(1), 7);
        let e = net.deliver(ProcessId(1), 0);
        assert_eq!(e.from, ProcessId(2)); // impersonates p2 (= x mod n)
        assert_eq!(e.payload, 7);
        assert_eq!(net.forged_count(), 1);
        assert_eq!(net.mutated_count(), 1);
    }

    #[test]
    fn replay_serves_stale_payloads_without_resurrecting_consumed_ones() {
        use sih_model::{AdversaryPlan, MutationWindow};
        // Replay every second send on 0 -> 1 (k % 2 == 1).
        let plan = AdversaryPlan::builder(2)
            .mutate(MutationWindow {
                src: ProcessId(0),
                dst: ProcessId(1),
                kind: MutationKind::Replay,
                x: 0,
                stride: 2,
                offset: 1,
                from: Time(0),
                until: None,
            })
            .build();
        let mut net: Network<u8> = Network::new(2);
        net.set_adversary(plan, Armor::NONE);
        // k=0: clean, stashed. k=1: replaced by the stale 10 — the
        // intended 11 is consumed and must never reappear. k=2: clean
        // again (restashes 12). k=3: replays 12, not the consumed 11.
        net.send(ProcessId(0), ProcessId(1), Time(1), 10);
        net.send(ProcessId(0), ProcessId(1), Time(2), 11);
        net.send(ProcessId(0), ProcessId(1), Time(3), 12);
        net.send(ProcessId(0), ProcessId(1), Time(4), 13);
        let got: Vec<u8> = (0..4).map(|_| net.deliver(ProcessId(1), 0).payload).collect();
        assert_eq!(got, vec![10, 10, 12, 12]);
        assert_eq!(net.mutated_count(), 2);
        // A replay window with an empty stash passes the send through.
        let plan =
            AdversaryPlan::builder(2).replay(ProcessId(0), ProcessId(1), Time(0), None).build();
        let mut net: Network<u8> = Network::new(2);
        net.set_adversary(plan, Armor::NONE);
        net.send(ProcessId(0), ProcessId(1), Time(1), 42);
        assert_eq!(net.deliver(ProcessId(1), 0).payload, 42);
        assert_eq!(net.mutated_count(), 0);
    }

    #[test]
    fn adversary_free_fingerprints_ignore_the_adversary_machinery() {
        use crate::fingerprint::Fnv64;
        use sih_model::AdversaryPlan;
        let fp = |net: &Network<u8>| {
            let mut h = Fnv64::new();
            net.fingerprint_into(&mut h);
            h.finish()
        };
        let mut plain: Network<u8> = Network::new(2);
        plain.send(ProcessId(0), ProcessId(1), Time(1), 5);
        // An installed (even honest) adversary widens the fingerprint
        // domain, exactly like an installed fault plan...
        let mut adv: Network<u8> = Network::new(2);
        adv.set_adversary(AdversaryPlan::honest(2), Armor::NONE);
        adv.send(ProcessId(0), ProcessId(1), Time(1), 5);
        assert_ne!(fp(&plain), fp(&adv));
        // ...but uninstalling it restores the baseline domain: this is
        // what the differential armor suite relies on.
        adv.take_adversary();
        assert_eq!(fp(&plain), fp(&adv));
    }

    #[test]
    fn broadcast_consults_the_adversary_per_recipient() {
        use sih_model::AdversaryPlan;
        let plan =
            AdversaryPlan::builder(3).perturb(ProcessId(0), ProcessId(2), 5, Time(0), None).build();
        let mut net: Network<u8> = Network::new(3);
        net.set_adversary(plan, Armor::NONE);
        net.broadcast(ProcessId(0), Time(1), 10, 3, None);
        assert_eq!(net.deliver(ProcessId(0), 0).payload, 10);
        assert_eq!(net.deliver(ProcessId(1), 0).payload, 10);
        assert_eq!(net.deliver(ProcessId(2), 0).payload, 15);
        assert_eq!(net.mutated_count(), 1);
        assert_eq!(net.delivered_count(), 2);
    }

    #[test]
    fn heavy_tombstoning_compacts_and_stays_correct() {
        let mut net: Network<u32> = Network::new(1);
        let to = ProcessId(0);
        for i in 0..1_000u32 {
            net.send(to, to, Time(u64::from(i)), i);
        }
        // Deliver from the back until only the front remains.
        for _ in 0..999 {
            let last = net.pending_count(to) - 1;
            net.deliver(to, last);
        }
        assert_eq!(net.pending_count(to), 1);
        let front = net.deliver(to, 0);
        assert_eq!(front.payload, 0);
        assert_eq!(net.in_flight(), 0);
    }
}
