//! Deterministic asynchronous message-passing simulator — the
//! mechanization of the model of computation of *Sharing is Harder than
//! Agreeing* (PODC 2008, §2.1).
//!
//! A run executes in atomic steps: at each step exactly one process (1)
//! receives one message or the null message, (2) queries its failure
//! detector, and (3) transitions, sending messages. The pieces:
//!
//! * [`Automaton`] — one process's deterministic step function;
//! * [`Network`] — reliable asynchronous channels;
//! * [`Scheduler`] / [`FairScheduler`] / [`RoundRobinScheduler`] /
//!   [`ScriptedScheduler`] — the adversary that resolves asynchrony;
//! * [`Simulation`] — the engine: owns the automata, pattern and network,
//!   executes steps, records a replayable [`Trace`];
//! * [`Stacked`] — layering a consumer algorithm on top of a
//!   failure-detector emulation (the paper's reduction mechanism);
//! * [`explore`] — bounded exhaustive schedule enumeration.
//!
//! # Example: two processes ping-pong until one decides
//!
//! ```
//! use sih_model::{FailurePattern, NoDetector, ProcessId, Value};
//! use sih_runtime::{Automaton, Effects, FairScheduler, Simulation, StepInput};
//!
//! #[derive(Clone, Debug, Default)]
//! struct PingPong { decided: bool }
//!
//! impl Automaton for PingPong {
//!     type Msg = &'static str;
//!     fn step(&mut self, input: StepInput<&'static str>, eff: &mut Effects<&'static str>) {
//!         match input.delivered {
//!             None if input.me == ProcessId(0) && !self.decided => {
//!                 eff.send(ProcessId(1), "ping");
//!             }
//!             Some(env) if env.payload == "ping" && !self.decided => {
//!                 self.decided = true;
//!                 eff.decide(Value(1));
//!                 eff.halt();
//!             }
//!             _ => {}
//!         }
//!     }
//!     fn halted(&self) -> bool { self.decided }
//! }
//!
//! let mut sim = Simulation::new(
//!     vec![PingPong::default(), PingPong::default()],
//!     FailurePattern::builder(2).crash_at(ProcessId(0), sih_model::Time(40)).build(),
//! );
//! let outcome = sim.run(&mut FairScheduler::new(7), &NoDetector, 10_000);
//! assert_eq!(sim.trace().decision_of(ProcessId(1)), Some(Value(1)));
//! # let _ = outcome;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod diagram;
mod dpor;
mod explore;
#[cfg(test)]
mod fairness_tests;
mod fingerprint;
pub mod fuzz;
mod hb;
mod network;
pub mod repro;
mod scheduler;
mod sim;
mod stack;
pub mod sweep;
mod trace;

pub use automaton::{Automaton, Effects, Envelope, MsgId, OpEvent, StepInput};
pub use diagram::{column_time, render_diagram, render_summary, MAX_COLUMNS};
pub use dpor::{wake_process, wake_races, SleepKey, SleepSet};
pub use explore::{explore, explore_par, explore_with, ExploreConfig, ExploreResult};
pub use fingerprint::{fnv1a_64, Fnv64};
pub use fuzz::{
    crossover, mutate, Coverage, FuzzCorpus, FuzzRng, MutOp, MutatorConfig, PowerEntry,
};
pub use hb::{HbState, VClock};
pub use network::{Corruptible, Network};
pub use repro::{
    shrink_schedule, Schedule, ScheduleError, ShrinkOptions, ShrinkReport, SCHEDULE_VERSION,
};
pub use scheduler::{
    Choice, FairScheduler, RoundRobinScheduler, Scheduler, ScriptExhausted, ScriptedScheduler,
};
pub use sim::{
    LivenessVerdict, RunOutcome, SchedState, SimPool, Simulation, StepReport, StopReason,
};
pub use stack::{
    stubborn_processes, Layered, ReportLayer, Stacked, Stubborn, StubbornMsg, STUBBORN_PERIOD,
};
pub use trace::{Event, Trace, TraceLevel};
