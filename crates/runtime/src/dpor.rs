//! Source-set support for the DPOR explorer: sleep/source sets and
//! happens-before race wake-ups.
//!
//! The legacy sleep-set reduction ([`ExploreConfig::por`]) only skips a
//! child when its reordering with the **immediately preceding** step is
//! already covered: each node's sleep set is rebuilt from its earlier
//! siblings and forgotten one level down. Source-DPOR (Abdulla,
//! Aronis, Jonsson, Sagonas — the optimal-DPOR line) keeps the set
//! alive along the path: a choice goes to sleep when the branch that
//! runs it *first* has been explored, and it **stays** asleep through
//! every later step it is independent with. The set of choices actually
//! expanded at a node — enabled minus sleeping — is the node's *source
//! set*; it stays provably sufficient because a sleeping choice is woken
//! (put back into the source set) the moment a step it races with
//! executes.
//!
//! Races are judged with the [`crate::hb`] vector clocks: a step of `p`
//! that sends into `q`'s queue is a race with `q`'s sleeping deliveries
//! iff the message's stamp is concurrent with `q`'s clock — then
//! delivering before vs after observing the send are genuinely
//! different futures and both orders must be explored. Steps that
//! produce time-stamped checker events (non-[*quiet*] steps) or
//! unstable detector outputs wake **everything**: the explorer's
//! equivalence is check-equivalence, and such steps are visible to
//! checkers in a way that does not commute (see DESIGN.md).
//!
//! Sleeping choices are identified by **content**, not position: a
//! [`SleepKey`] pairs the process with the *envelope fingerprint* of the
//! delivered message (or `None` for the no-delivery step), never its
//! queue index. Content keys are stable under the explorer's canonical
//! content-ordered enumeration — two states with equal queue multisets
//! build identical sleep sets — which is what lets the dedup key stay on
//! the order-insensitive multiset fingerprint (see `crate::explore`).
//!
//! Everything here is deterministic: a [`SleepSet`] is a sorted `Vec`
//! in [`SleepKey`]'s canonical order, and its fingerprint feeds the
//! explorer's dedup key so two visits of one state under *different*
//! sleep contexts are never merged (merging them would let the context
//! with the larger sleep set skip schedules only the other context
//! covered).
//!
//! [`ExploreConfig::por`]: crate::ExploreConfig::por
//! [*quiet*]: crate::StepReport::quiet

// sih-analysis: allow(index-reachable) — `grew` is the explorer's per-destination growth
// vector of length n, and every sleeping key's process id comes from the explorer's own
// choice enumeration, bounded by n at construction.
use crate::fingerprint::Fnv64;
use crate::hb::HbState;
use sih_model::ProcessId;

/// A sleeping choice, identified by content: the process and the
/// envelope fingerprint of the message it would deliver (`None` = the
/// no-delivery step).
///
/// The canonical `Ord` (process, then `None` before any delivery, then
/// by fingerprint) is the sort order of [`SleepSet`]'s backing vector;
/// it never has to match the explorer's enumeration order, only be a
/// pure function of content.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SleepKey {
    /// The process whose step is asleep.
    pub p: ProcessId,
    /// Envelope fingerprint of the delivered message, or `None` for a
    /// step without a delivery.
    pub deliver: Option<u64>,
}

/// A sleep set: choices whose subtrees are already covered by an earlier
/// branch, kept sorted in [`SleepKey`]'s canonical order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SleepSet {
    sleeping: Vec<SleepKey>,
}

impl SleepSet {
    /// The empty set.
    pub fn new() -> Self {
        SleepSet { sleeping: Vec::new() }
    }

    /// Whether `key` is asleep.
    pub fn contains(&self, key: SleepKey) -> bool {
        self.sleeping.binary_search(&key).is_ok()
    }

    /// Puts `key` to sleep (idempotent).
    pub fn insert(&mut self, key: SleepKey) {
        if let Err(at) = self.sleeping.binary_search(&key) {
            self.sleeping.insert(at, key);
        }
    }

    /// Number of sleeping choices.
    pub fn len(&self) -> usize {
        self.sleeping.len()
    }

    /// Whether nothing is asleep.
    pub fn is_empty(&self) -> bool {
        self.sleeping.is_empty()
    }

    /// The sleeping choices in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = SleepKey> + '_ {
        self.sleeping.iter().copied()
    }

    /// Removes everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.sleeping.clear();
    }

    /// Replaces the contents with a copy of `src`, reusing the
    /// allocation (the explorer's pooled child materialization).
    pub fn copy_from(&mut self, src: &SleepSet) {
        self.sleeping.clone_from(&src.sleeping);
    }

    /// Keeps only the choices `keep` accepts; returns how many were
    /// dropped (woken).
    pub fn retain(&mut self, mut keep: impl FnMut(SleepKey) -> bool) -> u64 {
        let before = self.sleeping.len();
        self.sleeping.retain(|&c| keep(c));
        (before - self.sleeping.len()) as u64
    }

    /// Canonical 64-bit fingerprint of the set — the sleep-context half
    /// of the explorer's dedup key. The empty set hashes to 0 so
    /// context-free exploration keys exactly as it did before contexts
    /// existed.
    pub fn fingerprint(&self) -> u64 {
        if self.sleeping.is_empty() {
            return 0;
        }
        let mut h = Fnv64::new();
        for c in &self.sleeping {
            h.write_u64(u64::from(c.p.0));
            match c.deliver {
                None => h.write_u64(0),
                Some(fp) => {
                    h.write_u64(1);
                    h.write_u64(fp);
                }
            }
        }
        h.finish()
    }
}

/// Wakes the sleeping choices a just-executed step of `executed` races
/// with, returning the number of races found (= choices woken).
///
/// `grew` holds, per destination, how many messages the step appended to
/// that queue. A sleeping choice is woken when:
///
/// * it belongs to the process that just stepped (program order is a
///   dependency: the sleeping choice's one-branch-covers-it argument was
///   about the *old* state of that process), or
/// * the step grew its process's queue and the new message's stamp is
///   concurrent with that process's clock ([`HbState::send_races`]) — a
///   genuine send-vs-delivery race, both orders reachable and distinct.
///
/// For a cross-process send the stamp carries the sender's just-ticked
/// own component, which the destination cannot have observed, so
/// `send_races` is always true there — the clock test matters for
/// self-sends (already woken by program order) and keeps the judgment
/// principled rather than assumed. Content keys make everything else
/// independent: a step of `p` never removes messages from `q`'s queue,
/// so a sleeping `(q, fp)` still names a pending message afterwards.
pub fn wake_races(sleep: &mut SleepSet, hb: &HbState, executed: ProcessId, grew: &[usize]) -> u64 {
    if sleep.is_empty() {
        return 0;
    }
    sleep.retain(|c| {
        if c.p == executed {
            return false;
        }
        let to = c.p;
        if grew[to.index()] > 0 && hb.send_races(to) {
            return false;
        }
        true
    })
}

/// Wakes every sleeping choice of `p` (used when `p`'s detector output
/// is about to change, or `p` crashes: its sleeping steps no longer
/// commute forward). Returns the number woken.
pub fn wake_process(sleep: &mut SleepSet, p: ProcessId) -> u64 {
    sleep.retain(|c| c.p != p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32, deliver: Option<u64>) -> SleepKey {
        SleepKey { p: ProcessId(p), deliver }
    }

    #[test]
    fn sleep_set_is_sorted_and_deduplicated() {
        let mut s = SleepSet::new();
        s.insert(key(1, Some(0)));
        s.insert(key(0, None));
        s.insert(key(1, Some(0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(key(0, None)));
        let order: Vec<SleepKey> = s.iter().collect();
        assert_eq!(order, vec![key(0, None), key(1, Some(0))]);
    }

    #[test]
    fn fingerprint_is_canonical_and_insertion_order_free() {
        let mut a = SleepSet::new();
        a.insert(key(0, None));
        a.insert(key(2, Some(1)));
        let mut b = SleepSet::new();
        b.insert(key(2, Some(1)));
        b.insert(key(0, None));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), 0);
        assert_eq!(SleepSet::new().fingerprint(), 0);
        // None vs Some must not collide through the encoding — in
        // particular None vs Some(u64::MAX), which a tagless
        // sentinel encoding would merge.
        let mut c = SleepSet::new();
        c.insert(key(0, None));
        let mut d = SleepSet::new();
        d.insert(key(0, Some(u64::MAX)));
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn racing_sends_wake_sleeping_deliveries() {
        let mut hb = HbState::new(2);
        let mut sleep = SleepSet::new();
        sleep.insert(key(1, None));
        sleep.insert(key(1, Some(0xabcd)));
        // p0 steps and sends to p1: both of p1's sleeping choices wake.
        hb.apply(ProcessId(0), None, &[0, 1]);
        let woken = wake_races(&mut sleep, &hb, ProcessId(0), &[0, 1]);
        assert_eq!(woken, 2);
        assert!(sleep.is_empty());
    }

    #[test]
    fn non_growing_steps_leave_sleepers_asleep() {
        let mut hb = HbState::new(3);
        let mut sleep = SleepSet::new();
        sleep.insert(key(1, None));
        sleep.insert(key(0, None));
        // p2 steps without sending: only p2's own sleepers would wake,
        // and it has none — p0's and p1's stay asleep.
        hb.apply(ProcessId(2), None, &[0, 0, 0]);
        let woken = wake_races(&mut sleep, &hb, ProcessId(2), &[0, 0, 0]);
        assert_eq!(woken, 0);
        assert_eq!(sleep.len(), 2);
        // The stepping process's own sleepers always wake.
        let woken = wake_races(&mut sleep, &hb, ProcessId(0), &[0, 0, 0]);
        assert_eq!(woken, 1);
        assert!(!sleep.contains(key(0, None)));
    }

    #[test]
    fn wake_process_clears_one_process_only() {
        let mut sleep = SleepSet::new();
        sleep.insert(key(0, None));
        sleep.insert(key(1, None));
        sleep.insert(key(1, Some(2)));
        assert_eq!(wake_process(&mut sleep, ProcessId(1)), 2);
        assert_eq!(sleep.len(), 1);
        assert!(sleep.contains(key(0, None)));
    }
}
