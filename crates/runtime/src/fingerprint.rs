//! In-repo FNV-1a/64 streaming hasher for canonical state fingerprints.
//!
//! The reduced exhaustive explorer ([`crate::explore`]) dedups revisited
//! states by a 64-bit fingerprint of the simulation's canonical state.
//! The hash must be identical across processes, platforms and runs —
//! `std`'s `DefaultHasher` is seeded per process and its algorithm is
//! explicitly unstable, so the determinism contract (DESIGN.md §6) rules
//! it out. FNV-1a is tiny, dependency-free and fully specified; the
//! fingerprint is a pure function of the bytes fed to it.
//!
//! [`Fnv64`] also implements [`std::fmt::Write`], so canonical *byte
//! encodings* of compound state can be produced by streaming a value's
//! `Debug` rendering straight into the hasher without allocating:
//! derived `Debug` output is a pure function of the data (field values in
//! declaration order — no addresses, no hash-seeded iteration), which
//! makes it a convenient canonical encoding for plain-data state.

use std::fmt;

/// A streaming FNV-1a/64 hasher.
///
/// # Example
///
/// ```
/// use sih_runtime::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"hello");
/// let a = h.finish();
/// let mut h2 = Fnv64::new();
/// h2.write(b"hel");
/// h2.write(b"lo");
/// assert_eq!(a, h2.finish()); // streaming is chunk-insensitive
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

/// FNV-1a/64 offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a/64 prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    /// Feeds one byte (domain-separation tags between sections).
    pub fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` (so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a value's `Debug` rendering as the canonical byte encoding.
    pub fn write_debug<T: fmt::Debug>(&mut self, value: &T) {
        // Formatting into a hasher cannot fail; the sink is infallible.
        let _ = fmt::write(self, format_args!("{value:?}"));
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// Hash of a byte slice in one call (reference entry point and test
/// anchor for the streaming implementation).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Vectors from the FNV reference code (Noll).
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chunked_and_whole_writes_agree() {
        let mut whole = Fnv64::new();
        whole.write(b"canonical encoding");
        let mut parts = Fnv64::new();
        parts.write(b"canonical ");
        parts.write(b"encoding");
        assert_eq!(whole.finish(), parts.finish());
    }

    #[test]
    fn debug_streaming_matches_formatted_string() {
        #[derive(Debug)]
        #[allow(dead_code)] // fields exist to be Debug-rendered
        struct S {
            a: u32,
            b: Option<&'static str>,
        }
        let v = S { a: 7, b: Some("x") };
        let mut streamed = Fnv64::new();
        streamed.write_debug(&v);
        assert_eq!(streamed.finish(), fnv1a_64(format!("{v:?}").as_bytes()));
    }

    #[test]
    fn integer_writes_are_width_stable() {
        let mut a = Fnv64::new();
        a.write_usize(513);
        let mut b = Fnv64::new();
        b.write_u64(513);
        assert_eq!(a.finish(), b.finish());
    }
}
