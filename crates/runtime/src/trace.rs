//! Run traces: everything the meta-level checkers need to judge a run.
//!
//! A [`Trace`] records the observable events of a run — steps, sends,
//! decisions, emulated failure-detector outputs, register-operation
//! boundaries. The property checkers of the downstream crates (agreement,
//! σ/Σ specifications, linearizability) are all functions of a trace plus
//! the run's failure pattern.

// sih-analysis: allow(index-reachable) — per-process trace lanes are n-sized at construction
// and indexed by the stepping process's own id.
use crate::automaton::{MsgId, OpEvent};
use crate::fingerprint::Fnv64;
use sih_model::{
    FdOutput, OpId, OpKind, OpRecord, ProcessId, ProcessSet, RecordedHistory, Time, Value,
};
use std::collections::BTreeMap;

/// One observable event of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A process took a step.
    Step {
        /// Step time.
        t: Time,
        /// Stepping process.
        p: ProcessId,
        /// The message delivered in this step, if any.
        delivered: Option<(ProcessId, MsgId)>,
        /// The failure-detector value obtained in this step.
        fd: FdOutput,
    },
    /// A message entered the network.
    Send {
        /// Sending step time.
        t: Time,
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Message id.
        id: MsgId,
    },
    /// A process decided.
    Decide {
        /// Decision time.
        t: Time,
        /// Deciding process.
        p: ProcessId,
        /// Decided value.
        value: Value,
    },
    /// A process updated its emulated failure-detector output.
    Emulate {
        /// Update time.
        t: Time,
        /// Emulating process.
        p: ProcessId,
        /// New output value.
        out: FdOutput,
    },
    /// A register operation was invoked.
    OpInvoke {
        /// Invocation time.
        t: Time,
        /// Invoking process.
        p: ProcessId,
        /// Operation id.
        id: OpId,
        /// Read or write.
        kind: OpKind,
    },
    /// A register operation returned.
    OpReturn {
        /// Response time.
        t: Time,
        /// Process whose operation returned.
        p: ProcessId,
        /// Operation id.
        id: OpId,
        /// Read or write.
        kind: OpKind,
        /// For reads, the value read.
        read_value: Option<Value>,
    },
}

/// How much of a run a [`Trace`] records.
///
/// Large sweeps execute millions of steps whose per-event records no
/// checker ever reads; [`TraceLevel::Light`] skips them while keeping
/// everything the property checkers consume.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceLevel {
    /// Record every event (steps, sends, decisions, emulations, ops).
    #[default]
    Full,
    /// Record only decisions, emulated-detector outputs and register-op
    /// boundaries — the inputs of the agreement/σ/linearizability
    /// checkers. Per-step `Step`/`Send` events are skipped (aggregate
    /// counters and `end_time` remain exact). Space-timing diagrams
    /// ([`crate::diagram`]) need a `Full` trace.
    Light,
}

/// The recorded trace of one run.
#[derive(Debug)]
pub struct Trace {
    n: usize,
    level: TraceLevel,
    events: Vec<Event>,
    decisions: Vec<Option<(Time, Value)>>,
    emulated: RecordedHistory,
    steps_taken: Vec<u64>,
    sent: u64,
    decided_count: usize,
    last_step_time: Time,
}

// Manual Clone so `clone_from` reuses the event log, decision table and
// per-process vectors — the exhaustive explorer copies the trace on
// every tree edge.
impl Clone for Trace {
    fn clone(&self) -> Self {
        Trace {
            n: self.n,
            level: self.level,
            events: self.events.clone(),
            decisions: self.decisions.clone(),
            emulated: self.emulated.clone(),
            steps_taken: self.steps_taken.clone(),
            sent: self.sent,
            decided_count: self.decided_count,
            last_step_time: self.last_step_time,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.level = source.level;
        self.events.clone_from(&source.events);
        self.decisions.clone_from(&source.decisions);
        self.emulated.clone_from(&source.emulated);
        self.steps_taken.clone_from(&source.steps_taken);
        self.sent = source.sent;
        self.decided_count = source.decided_count;
        self.last_step_time = source.last_step_time;
    }
}

impl Trace {
    /// An empty trace for `n` processes; `emulated_initial` is the output
    /// every process's emulated detector starts at (e.g. Figure 6
    /// processes emit their first `output` only after a step, so the
    /// checkers need a defined initial value — conventionally `⊥`).
    pub fn new(n: usize, emulated_initial: FdOutput) -> Self {
        Trace {
            n,
            level: TraceLevel::Full,
            events: Vec::new(),
            decisions: vec![None; n],
            emulated: RecordedHistory::new(n, emulated_initial),
            steps_taken: vec![0; n],
            sent: 0,
            decided_count: 0,
            last_step_time: Time::ZERO,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    pub(crate) fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Empties the trace for a fresh run of `n` processes, keeping the
    /// recording level and (where sizes allow) the event and per-process
    /// allocations.
    pub(crate) fn reset(&mut self, n: usize, emulated_initial: FdOutput) {
        self.n = n;
        self.events.clear();
        self.decisions.clear();
        self.decisions.resize(n, None);
        self.emulated.reset(n, emulated_initial);
        self.steps_taken.clear();
        self.steps_taken.resize(n, 0);
        self.sent = 0;
        self.decided_count = 0;
        self.last_step_time = Time::ZERO;
    }

    pub(crate) fn push_step(
        &mut self,
        t: Time,
        p: ProcessId,
        delivered: Option<(ProcessId, MsgId)>,
        fd: FdOutput,
    ) {
        self.steps_taken[p.index()] += 1;
        self.last_step_time = t;
        if self.level == TraceLevel::Full {
            self.events.push(Event::Step { t, p, delivered, fd });
        }
    }

    pub(crate) fn push_send(&mut self, t: Time, from: ProcessId, to: ProcessId, id: MsgId) {
        self.sent += 1;
        if self.level == TraceLevel::Full {
            self.events.push(Event::Send { t, from, to, id });
        }
    }

    /// Records a fan-out of one payload to every process except `except`.
    /// Message ids are sequential per recipient in increasing-id order
    /// starting at `first_id` — exactly the ids [`crate::Network::broadcast`]
    /// assigned — so a `Full` trace is byte-identical to the per-recipient
    /// `push_send` loop it replaces. At [`TraceLevel::Light`] only the
    /// aggregate counter moves: O(1) per broadcast instead of O(n).
    pub(crate) fn push_send_batch(
        &mut self,
        t: Time,
        from: ProcessId,
        n: usize,
        except: Option<ProcessId>,
        first_id: MsgId,
    ) {
        let count = n - except.is_some() as usize;
        self.sent += count as u64;
        if self.level == TraceLevel::Full {
            let mut id = first_id.0;
            for i in 0..n as u32 {
                let to = ProcessId(i);
                if Some(to) == except {
                    continue;
                }
                self.events.push(Event::Send { t, from, to, id: MsgId(id) });
                id += 1;
            }
        }
    }

    pub(crate) fn push_decide(&mut self, t: Time, p: ProcessId, value: Value) -> bool {
        if self.decisions[p.index()].is_some() {
            return false;
        }
        self.decisions[p.index()] = Some((t, value));
        self.decided_count += 1;
        self.events.push(Event::Decide { t, p, value });
        true
    }

    pub(crate) fn push_emulate(&mut self, t: Time, p: ProcessId, out: FdOutput) {
        self.emulated.record(p, t, out);
        self.events.push(Event::Emulate { t, p, out });
    }

    pub(crate) fn push_op_event(&mut self, t: Time, p: ProcessId, ev: OpEvent) {
        match ev {
            OpEvent::Invoke { id, kind } => self.events.push(Event::OpInvoke { t, p, id, kind }),
            OpEvent::Return { id, kind, read_value } => {
                self.events.push(Event::OpReturn { t, p, id, kind, read_value })
            }
        }
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The decision of `p`, if it decided.
    pub fn decision_of(&self, p: ProcessId) -> Option<Value> {
        self.decisions[p.index()].map(|(_, v)| v)
    }

    /// The decision time of `p`, if it decided.
    pub fn decision_time_of(&self, p: ProcessId) -> Option<Time> {
        self.decisions[p.index()].map(|(t, _)| t)
    }

    /// The set of processes that decided.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessSet::MAX_PROCESSES`; large-`n` callers use
    /// [`Trace::decided_count`] or [`Trace::decision_of`] instead.
    pub fn decided(&self) -> ProcessSet {
        (0..self.n as u32).map(ProcessId).filter(|p| self.decision_of(*p).is_some()).collect()
    }

    /// Number of processes that decided — O(1), any `n`.
    pub fn decided_count(&self) -> usize {
        self.decided_count
    }

    /// The distinct decided values, sorted.
    pub fn distinct_decisions(&self) -> Vec<Value> {
        let mut vals: Vec<Value> =
            self.decisions.iter().filter_map(|d| d.map(|(_, v)| v)).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// The recorded emulated-failure-detector history (one timeline per
    /// process) — what the σ/Σ/anti-Ω spec checkers consume.
    pub fn emulated_history(&self) -> &RecordedHistory {
        &self.emulated
    }

    /// Steps taken by `p`.
    pub fn steps_of(&self, p: ProcessId) -> u64 {
        self.steps_taken[p.index()]
    }

    /// Total steps in the run.
    pub fn total_steps(&self) -> u64 {
        self.steps_taken.iter().sum()
    }

    /// Total messages sent in the run.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Approximate heap usage of the trace in bytes (capacity-based; the
    /// emulated-history timelines are not counted — they are empty in
    /// scale runs, which never emulate a detector).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.events.capacity() * size_of::<Event>()
            + self.decisions.capacity() * size_of::<Option<(Time, Value)>>()
            + self.steps_taken.capacity() * size_of::<u64>()
    }

    /// Assembles the register-operation records of the run by pairing
    /// invocation and response events. Operations whose response never
    /// arrived are returned as pending (`returned == None`).
    ///
    /// # Panics
    ///
    /// Panics if the trace contains a response without a matching
    /// invocation (an automaton bug, not a legal run).
    pub fn op_records(&self) -> Vec<OpRecord> {
        // BTreeMap, not HashMap: record assembly must not depend on the
        // process's random hash seed (determinism contract, DESIGN.md §6).
        let mut by_id: BTreeMap<OpId, OpRecord> = BTreeMap::new();
        let mut order: Vec<OpId> = Vec::new();
        for ev in &self.events {
            match *ev {
                Event::OpInvoke { t, p, id, kind } => {
                    let prev = by_id.insert(
                        id,
                        OpRecord {
                            id,
                            process: p,
                            kind,
                            invoked: t,
                            returned: None,
                            read_value: None,
                        },
                    );
                    assert!(prev.is_none(), "duplicate op invocation {id}");
                    order.push(id);
                }
                Event::OpReturn { t, id, kind, read_value, .. } => {
                    let rec = by_id
                        .get_mut(&id)
                        .unwrap_or_else(|| panic!("response without invocation {id}"));
                    assert_eq!(rec.kind, kind, "response kind mismatch for {id}");
                    rec.returned = Some(t);
                    rec.read_value = read_value;
                }
                _ => {}
            }
        }
        order.into_iter().map(|id| by_id[&id]).collect()
    }

    /// The last step time in the trace (`Time::ZERO` for an empty trace).
    /// O(1): tracked directly rather than scanned from the event log, so
    /// it is exact at every [`TraceLevel`].
    pub fn end_time(&self) -> Time {
        self.last_step_time
    }

    /// Feeds the trace's **checker inputs** into a state fingerprint:
    /// decisions with their times, the emulated failure-detector history,
    /// register-operation events in order, per-process step counts and
    /// the sent counter. Per-step `Step`/`Send` events are *excluded* —
    /// they carry harness metadata (message ids, step-by-step schedules)
    /// that no property checker may read, and hashing them would make
    /// every interleaving unique, defeating dedup. The same fingerprint
    /// therefore results at [`TraceLevel::Full`] and [`TraceLevel::Light`].
    pub(crate) fn fingerprint_into(&self, h: &mut Fnv64) {
        // Structurally simple fields hash as raw integers (an order of
        // magnitude cheaper than streaming their Debug rendering).
        for d in &self.decisions {
            match d {
                None => h.write_u8(0),
                Some((t, v)) => {
                    h.write_u8(1);
                    h.write_u64(t.0);
                    h.write_u64(v.0);
                }
            }
        }
        h.write_debug(&self.emulated);
        for ev in &self.events {
            if matches!(ev, Event::OpInvoke { .. } | Event::OpReturn { .. }) {
                h.write_debug(ev);
            }
        }
        for s in &self.steps_taken {
            h.write_u64(*s);
        }
        h.write_u64(self.sent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_first_write_wins() {
        let mut tr = Trace::new(2, FdOutput::Bot);
        assert!(tr.push_decide(Time(1), ProcessId(0), Value(5)));
        assert!(!tr.push_decide(Time(2), ProcessId(0), Value(6)));
        assert_eq!(tr.decision_of(ProcessId(0)), Some(Value(5)));
        assert_eq!(tr.decision_time_of(ProcessId(0)), Some(Time(1)));
        assert_eq!(tr.decided(), ProcessSet::singleton(ProcessId(0)));
    }

    #[test]
    fn distinct_decisions_sorted_dedup() {
        let mut tr = Trace::new(3, FdOutput::Bot);
        tr.push_decide(Time(1), ProcessId(0), Value(9));
        tr.push_decide(Time(2), ProcessId(1), Value(3));
        tr.push_decide(Time(3), ProcessId(2), Value(9));
        assert_eq!(tr.distinct_decisions(), vec![Value(3), Value(9)]);
    }

    #[test]
    fn emulated_history_tracks_outputs() {
        let mut tr = Trace::new(2, FdOutput::Bot);
        tr.push_emulate(Time(4), ProcessId(1), FdOutput::Leader(ProcessId(0)));
        let h = tr.emulated_history();
        use sih_model::FailureDetector;
        assert_eq!(h.output(ProcessId(1), Time(3)), FdOutput::Bot);
        assert_eq!(h.output(ProcessId(1), Time(4)), FdOutput::Leader(ProcessId(0)));
    }

    #[test]
    fn op_records_pairs_invocations_and_responses() {
        let mut tr = Trace::new(1, FdOutput::Bot);
        tr.push_op_event(
            Time(1),
            ProcessId(0),
            OpEvent::Invoke { id: OpId(0), kind: OpKind::Read },
        );
        tr.push_op_event(
            Time(5),
            ProcessId(0),
            OpEvent::Return { id: OpId(0), kind: OpKind::Read, read_value: Some(Value(2)) },
        );
        tr.push_op_event(
            Time(6),
            ProcessId(0),
            OpEvent::Invoke { id: OpId(1), kind: OpKind::Write(Value(7)) },
        );
        let recs = tr.op_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].returned, Some(Time(5)));
        assert_eq!(recs[0].read_value, Some(Value(2)));
        assert!(!recs[1].is_complete());
    }

    #[test]
    #[should_panic(expected = "response without invocation")]
    fn orphan_response_panics() {
        let mut tr = Trace::new(1, FdOutput::Bot);
        tr.push_op_event(
            Time(5),
            ProcessId(0),
            OpEvent::Return { id: OpId(9), kind: OpKind::Read, read_value: None },
        );
        let _ = tr.op_records();
    }

    #[test]
    fn light_level_skips_step_and_send_events_but_keeps_checker_inputs() {
        let mut tr = Trace::new(2, FdOutput::Bot);
        tr.set_level(TraceLevel::Light);
        tr.push_step(Time(1), ProcessId(0), None, FdOutput::Bot);
        tr.push_send(Time(1), ProcessId(0), ProcessId(1), MsgId(0));
        tr.push_decide(Time(2), ProcessId(0), Value(7));
        tr.push_emulate(Time(2), ProcessId(1), FdOutput::Leader(ProcessId(0)));
        tr.push_op_event(
            Time(3),
            ProcessId(1),
            OpEvent::Invoke { id: OpId(0), kind: OpKind::Read },
        );
        // Aggregates and checker inputs are exact…
        assert_eq!(tr.total_steps(), 1);
        assert_eq!(tr.messages_sent(), 1);
        assert_eq!(tr.end_time(), Time(1));
        assert_eq!(tr.decision_of(ProcessId(0)), Some(Value(7)));
        assert_eq!(tr.op_records().len(), 1);
        // …but the per-step event torrent is gone.
        assert!(tr.events().iter().all(|e| !matches!(e, Event::Step { .. } | Event::Send { .. })));
        assert_eq!(tr.events().len(), 3);
    }

    #[test]
    fn reset_clears_while_keeping_level() {
        let mut tr = Trace::new(2, FdOutput::Bot);
        tr.set_level(TraceLevel::Light);
        tr.push_step(Time(1), ProcessId(1), None, FdOutput::Bot);
        tr.push_decide(Time(1), ProcessId(1), Value(3));
        tr.reset(3, FdOutput::Bot);
        assert_eq!(tr.n(), 3);
        assert_eq!(tr.level(), TraceLevel::Light);
        assert_eq!(tr.total_steps(), 0);
        assert_eq!(tr.messages_sent(), 0);
        assert_eq!(tr.end_time(), Time::ZERO);
        assert!(tr.events().is_empty());
        assert_eq!(tr.decision_of(ProcessId(1)), None);
        assert_eq!(tr.decided(), ProcessSet::EMPTY);
    }

    #[test]
    fn step_and_send_counters() {
        let mut tr = Trace::new(2, FdOutput::Bot);
        tr.push_step(Time(1), ProcessId(0), None, FdOutput::Bot);
        tr.push_step(Time(2), ProcessId(0), None, FdOutput::Bot);
        tr.push_step(Time(3), ProcessId(1), None, FdOutput::Bot);
        tr.push_send(Time(3), ProcessId(1), ProcessId(0), MsgId(0));
        assert_eq!(tr.steps_of(ProcessId(0)), 2);
        assert_eq!(tr.total_steps(), 3);
        assert_eq!(tr.messages_sent(), 1);
        assert_eq!(tr.end_time(), Time(3));
    }
}
