//! ASCII space-time diagrams of runs.
//!
//! [`render_diagram`] draws a trace as one lane per process, one column
//! per step — the pictures distributed-computing papers draw by hand,
//! generated from real runs:
//!
//! ```text
//! p0 │ ●──────■D0
//! p1 │ ───●───────■D0
//! p2 │ ✕
//! ```
//!
//! Legend: `●` step, `▲` step with delivery, `■Dv` decision of value
//! `v`, `✕` crash, `·` idle. Long runs are column-capped.

use crate::trace::{Event, Trace};
use sih_model::{FailurePattern, ProcessId, Time};
use std::fmt::Write as _;

/// Maximum number of step-columns rendered (later events elided).
pub const MAX_COLUMNS: usize = 120;

/// Renders the first [`MAX_COLUMNS`] steps of a trace as a space-time
/// diagram (one lane per process).
pub fn render_diagram(trace: &Trace, pattern: &FailurePattern) -> String {
    let n = trace.n();
    let columns: Vec<&Event> = trace
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Step { .. }))
        .take(MAX_COLUMNS)
        .collect();

    // Per-process glyph per column.
    let mut lanes: Vec<Vec<String>> = vec![vec![String::from("─"); columns.len()]; n];
    let mut crashed_marked = vec![false; n];
    for (col, ev) in columns.iter().enumerate() {
        let Event::Step { t, p, delivered, .. } = ev else { unreachable!() };
        let glyph = if delivered.is_some() { "▲" } else { "●" };
        lanes[p.index()][col] = glyph.to_owned();
        // Decision in the same step?
        if trace.decision_time_of(*p) == Some(*t) {
            let v = trace.decision_of(*p).expect(
                "invariant: decision_time_of(p).is_some() implies decision_of(p).is_some()",
            );
            lanes[p.index()][col] = format!("■D{}", v.0);
        }
        // Mark crashes at the first column past each crash time.
        for i in 0..n {
            let q = ProcessId(i as u32);
            if !crashed_marked[i] && !pattern.is_alive(q, *t) {
                crashed_marked[i] = true;
                lanes[i][col] = "✕".to_owned();
            }
        }
    }
    for (i, marked) in crashed_marked.iter_mut().enumerate() {
        if !*marked && pattern.crashed_from_start_at(ProcessId(i as u32)) {
            if let Some(first) = lanes[i].first_mut() {
                *first = "✕".to_owned();
            }
            *marked = true;
        }
    }

    // Uniform column width so the lanes stay aligned even with
    // multi-character decision markers.
    let width = lanes.iter().flatten().map(|g| g.chars().count()).max().unwrap_or(1);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "steps 1..{} of {} (● step  ▲ delivery  ■Dv decide  ✕ crash)",
        columns.len(),
        trace.total_steps()
    );
    for (i, lane) in lanes.iter().enumerate() {
        let _ = write!(out, "p{i:<2}│ ");
        for glyph in lane {
            let pad = width - glyph.chars().count();
            let _ = write!(out, "{glyph}{}", "─".repeat(pad));
        }
        let _ = writeln!(out);
    }
    out
}

/// One-line run summary: decisions, steps, messages.
pub fn render_summary(trace: &Trace) -> String {
    let decisions: Vec<String> = (0..trace.n() as u32)
        .map(ProcessId)
        .map(|p| match trace.decision_of(p) {
            Some(v) => format!("{p}→{v}"),
            None => format!("{p}→⋯"),
        })
        .collect();
    format!(
        "steps={} msgs={} decisions: {}",
        trace.total_steps(),
        trace.messages_sent(),
        decisions.join("  ")
    )
}

/// The time axis label for a column (used by tooling/tests).
pub fn column_time(trace: &Trace, column: usize) -> Option<Time> {
    trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Step { t, .. } => Some(*t),
            _ => None,
        })
        .nth(column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Automaton, Effects, StepInput};
    use crate::scheduler::RoundRobinScheduler;
    use crate::sim::Simulation;
    use sih_model::{NoDetector, Value};

    #[derive(Clone, Debug, Default)]
    struct DecideSecond {
        steps: u32,
    }
    impl Automaton for DecideSecond {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            self.steps += 1;
            if self.steps == 1 {
                eff.send_all(input.n, 1);
            }
            if self.steps == 2 {
                eff.decide(Value::of_process(input.me));
                eff.halt();
            }
        }
        fn halted(&self) -> bool {
            self.steps >= 2
        }
    }

    fn sample_run() -> (Trace, FailurePattern) {
        let pattern = FailurePattern::builder(3).crash_at(ProcessId(2), Time(2)).build();
        let mut sim = Simulation::new(vec![DecideSecond::default(); 3], pattern.clone());
        let mut sched = RoundRobinScheduler::new();
        sim.run(&mut sched, &NoDetector, 50);
        (sim.into_trace(), pattern)
    }

    #[test]
    fn diagram_contains_lanes_and_markers() {
        let (trace, pattern) = sample_run();
        let text = render_diagram(&trace, &pattern);
        assert!(text.contains("p0 │"));
        assert!(text.contains("p2 │"));
        assert!(text.contains("■D0"), "{text}");
        assert!(text.contains("✕"), "{text}");
        assert!(text.lines().count() == 4, "{text}");
    }

    #[test]
    fn summary_lists_all_processes() {
        let (trace, _) = sample_run();
        let s = render_summary(&trace);
        assert!(s.contains("p0→v0"));
        assert!(s.contains("p1→v1"));
        assert!(s.contains("p2→"), "{s}");
    }

    #[test]
    fn column_times_are_increasing() {
        let (trace, _) = sample_run();
        let t0 = column_time(&trace, 0).unwrap();
        let t1 = column_time(&trace, 1).unwrap();
        assert!(t0 < t1);
        assert_eq!(column_time(&trace, 10_000), None);
    }

    #[test]
    fn diagram_caps_columns() {
        let pattern = FailurePattern::all_correct(2);
        #[derive(Clone, Debug)]
        struct Spin;
        impl Automaton for Spin {
            type Msg = u8;
            fn step(&mut self, _i: StepInput<u8>, _e: &mut Effects<u8>) {}
        }
        let mut sim = Simulation::new(vec![Spin, Spin], pattern.clone());
        let mut sched = RoundRobinScheduler::new();
        sim.run(&mut sched, &NoDetector, 1_000);
        let text = render_diagram(sim.trace(), &pattern);
        assert!(text.contains(&format!("steps 1..{MAX_COLUMNS}")));
    }
}
