//! Layered automata: running an algorithm *on top of* an emulated failure
//! detector.
//!
//! The paper's reductions work by emulation: an algorithm (Figures 3, 5, 6)
//! maintains a local variable `output` using the real failure detector
//! `D`, and a consumer algorithm then uses that variable as if it were a
//! failure-detector module for the emulated detector `D'`. [`Stacked`]
//! wires the two together at each process:
//!
//! * the **lower** automaton steps with the run's real detector output and
//!   publishes its emulated output via [`Effects::set_output`];
//! * the **upper** automaton steps with the lower's current emulated
//!   output as *its* `queryFD()` result;
//! * protocol messages are tagged [`Layered::Lower`] / [`Layered::Upper`]
//!   and routed to their layer.
//!
//! Each engine step advances both layers once (message delivery goes to
//! the layer that owns the message; the other layer receives the null
//! message), which preserves the model's guarantee that a correct process
//! gives infinitely many steps to *both* tasks.
//!
//! [`Effects::set_output`]: crate::Effects::set_output

// sih-analysis: allow(index-reachable) — Stubborn's per-link seq/ack tables are n²-sized at
// construction and indexed by link ids derived from validated ProcessIds.
use crate::automaton::{Automaton, Effects, Envelope, StepInput};
use crate::network::Corruptible;
use sih_model::{FdOutput, MutationKind, ProcessId};
use std::collections::{BTreeMap, BTreeSet};

/// A message of a two-layer protocol stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Layered<L, U> {
    /// A message of the emulation (lower) layer.
    Lower(L),
    /// A message of the consumer (upper) layer.
    Upper(U),
}

/// Which layer's emulated output the stack reports to the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReportLayer {
    /// Report the lower layer's emulated output (default): the trace's
    /// emulated history then records the emulation under test, even while
    /// a consumer runs on top.
    #[default]
    Lower,
    /// Report the upper layer's emulated output (for stacks whose upper
    /// layer is itself an emulator).
    Upper,
}

/// Two automata stacked at one process; see the module docs.
#[derive(Clone, Debug)]
pub struct Stacked<L: Automaton, U: Automaton> {
    lower: L,
    upper: U,
    emulated: FdOutput,
    report: ReportLayer,
}

impl<L: Automaton, U: Automaton> Stacked<L, U> {
    /// Stacks `upper` on top of `lower`; before the lower layer's first
    /// `set_output`, the upper layer's `queryFD()` returns
    /// `initial_output`.
    pub fn new(lower: L, upper: U, initial_output: FdOutput) -> Self {
        Stacked { lower, upper, emulated: initial_output, report: ReportLayer::Lower }
    }

    /// Selects which layer's emulated output the trace records.
    pub fn with_report(mut self, report: ReportLayer) -> Self {
        self.report = report;
        self
    }

    /// The lower (emulation) automaton.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    /// The upper (consumer) automaton.
    pub fn upper(&self) -> &U {
        &self.upper
    }

    /// The emulated output the upper layer currently sees.
    pub fn current_output(&self) -> FdOutput {
        self.emulated
    }
}

impl<L: Automaton, U: Automaton> Automaton for Stacked<L, U> {
    type Msg = Layered<L::Msg, U::Msg>;

    fn step(&mut self, input: StepInput<Self::Msg>, eff: &mut Effects<Self::Msg>) {
        // Route the delivered message (if any) to its layer.
        let (lower_msg, upper_msg) = match input.delivered {
            None => (None, None),
            Some(env) => match env.payload {
                Layered::Lower(payload) => (
                    Some(crate::automaton::Envelope {
                        id: env.id,
                        from: env.from,
                        to: env.to,
                        sent_at: env.sent_at,
                        payload,
                    }),
                    None,
                ),
                Layered::Upper(payload) => (
                    None,
                    Some(crate::automaton::Envelope {
                        id: env.id,
                        from: env.from,
                        to: env.to,
                        sent_at: env.sent_at,
                        payload,
                    }),
                ),
            },
        };

        // Lower layer steps with the real detector output.
        let mut lower_eff = Effects::new();
        self.lower.step(
            StepInput {
                me: input.me,
                n: input.n,
                now: input.now,
                delivered: lower_msg,
                fd: input.fd,
            },
            &mut lower_eff,
        );
        if let Some(out) = lower_eff.emulated {
            self.emulated = out;
        }

        // Upper layer steps with the emulated output.
        let mut upper_eff = Effects::new();
        if !self.upper.halted() {
            self.upper.step(
                StepInput {
                    me: input.me,
                    n: input.n,
                    now: input.now,
                    delivered: upper_msg,
                    fd: self.emulated,
                },
                &mut upper_eff,
            );
        } else if let Some(env) = upper_msg {
            // A message for a returned upper layer is dropped, as a halted
            // process would drop it.
            let _ = env;
        }

        // Merge effects. Fan-outs stay fan-outs: wrapping the payload in a
        // `Layered` tag keeps the batch (and its single stored payload)
        // intact through the stack.
        for op in lower_eff.sends {
            eff.sends.push(op.map_payload(Layered::Lower));
        }
        for op in upper_eff.sends {
            eff.sends.push(op.map_payload(Layered::Upper));
        }
        if let Some(v) = upper_eff.decision {
            eff.decide(v);
        }
        for ev in upper_eff.op_events {
            eff.op_events.push(ev);
        }
        let reported = match self.report {
            ReportLayer::Lower => lower_eff.emulated,
            ReportLayer::Upper => upper_eff.emulated,
        };
        if let Some(out) = reported {
            eff.set_output(out);
        }
        // The stack halts only when the upper layer does AND the lower
        // layer is not an ongoing emulation the rest of the system might
        // still read messages from. Emulators never halt, so in practice a
        // stacked process halts never; consumers' decisions are observed
        // via the trace. We still propagate an explicit upper halt if the
        // lower layer has also halted (both layers done).
        if (upper_eff.halt || self.upper.halted()) && self.lower.halted() {
            eff.halt();
        }
    }

    fn halted(&self) -> bool {
        self.lower.halted() && self.upper.halted()
    }
}

/// A message of the stubborn-link layer wrapping inner payloads of type
/// `M`.
///
/// `seq` numbers are per directed link (assigned by the sender, starting
/// at 0); `cum` is the sender's *receive* watermark towards the
/// destination — the piggybacked cumulative ack "I have every message you
/// sent me with sequence number `< cum`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StubbornMsg<M> {
    /// An inner-protocol message, stubbornly retransmitted until acked.
    Data {
        /// Per-link sequence number of the wrapped send.
        seq: u64,
        /// Piggybacked cumulative ack for the reverse direction.
        cum: u64,
        /// The inner protocol's payload.
        payload: M,
    },
    /// A bare cumulative ack (sent in response to every received `Data`).
    Ack {
        /// Cumulative ack: every reverse-direction `seq < cum` is received.
        cum: u64,
    },
}

/// The mutation adversary reaches through the stubborn layer to the
/// wrapped payload: `Data` frames corrupt their *inner* payload while
/// keeping `seq`/`cum` intact, so receive-side dedup still recognizes the
/// frame and the stubborn machinery keeps its bookkeeping — exactly one
/// (corrupted) delivery reaches the inner automaton. Bare `Ack` frames
/// carry nothing worth corrupting and cross untouched. Note the
/// retransmission buffer holds the *sent* payloads: when the adversary
/// consumes an envelope for a stale replay, the stubborn sender
/// retransmits its own clean copy — the consumed mutation is never
/// resurrected, because the network stashes only untampered sends.
impl<M: Corruptible + Clone> Corruptible for StubbornMsg<M> {
    fn corrupt(&self, kind: MutationKind, x: u64) -> Option<Self> {
        match self {
            StubbornMsg::Data { seq, cum, payload } => payload
                .corrupt(kind, x)
                .map(|payload| StubbornMsg::Data { seq: *seq, cum: *cum, payload }),
            StubbornMsg::Ack { .. } => None,
        }
    }
}

/// Default retransmission period of [`Stubborn`]: every `period`-th own
/// step resends all unacked messages.
pub const STUBBORN_PERIOD: u64 = 8;

/// A stubborn-link wrapper making any automaton loss-tolerant — the
/// standard reliable-channels-from-fair-lossy-links construction
/// (retransmit until acknowledged), with cumulative ack piggybacking and
/// receive-side dedup.
///
/// Each inner send gets a per-link sequence number and is kept in an
/// unacked buffer; every `period`-th step of the wrapper retransmits the
/// whole buffer. The receive side delivers each sequence number to the
/// inner automaton **exactly once** (so network-level duplicates and
/// retransmissions are invisible to it — duplicate copies share their
/// sequence number, which subsumes dedup by `MsgId`), and answers every
/// `Data` with a cumulative [`StubbornMsg::Ack`].
///
/// Over any fair-lossy link (one that delivers infinitely many of
/// infinitely many retransmissions — in particular any
/// [`LinkFaultPlan`](sih_model::LinkFaultPlan) with a finite
/// `quiescence_time()` under a fair scheduler), every inner send is
/// eventually delivered, so Figures 2/4/5 and the ABD register client run
/// **unchanged** on top.
///
/// The wrapper halts only once the inner automaton has halted **and**
/// nothing is left unacked — a decided process must keep retransmitting
/// so its peers can finish too.
#[derive(Clone, Debug)]
pub struct Stubborn<A: Automaton> {
    inner: A,
    period: u64,
    /// Own steps taken (drives the retransmission clock).
    ticks: u64,
    /// `next_seq[dst]`: sequence number of the next send to `dst`.
    next_seq: Vec<u64>,
    /// Sent but not yet cumulatively acked: `(dst, seq) -> payload`.
    unacked: BTreeMap<(u32, u64), A::Msg>,
    /// `recv_next[src]`: receive watermark (all `seq < recv_next` done).
    recv_next: Vec<u64>,
    /// `recv_ooo[src]`: received sequence numbers above the watermark.
    recv_ooo: Vec<BTreeSet<u64>>,
}

impl<A: Automaton> Stubborn<A> {
    /// Wraps `inner` for a system of `n` processes, with the default
    /// [`STUBBORN_PERIOD`].
    pub fn new(inner: A, n: usize) -> Self {
        Self::with_period(inner, n, STUBBORN_PERIOD)
    }

    /// Wraps `inner` with an explicit retransmission period (in own
    /// steps; `1` retransmits every step).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_period(inner: A, n: usize, period: u64) -> Self {
        assert!(period > 0, "retransmission period must be positive");
        Stubborn {
            inner,
            period,
            ticks: 0,
            next_seq: vec![0; n],
            unacked: BTreeMap::new(),
            recv_next: vec![0; n],
            recv_ooo: vec![BTreeSet::new(); n],
        }
    }

    /// The wrapped automaton.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Number of sends awaiting acknowledgement.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Drops every unacked `(dst, seq)` with `seq < cum` for `dst`.
    fn apply_cum_ack(&mut self, dst: ProcessId, cum: u64) {
        let d = dst.0;
        while let Some((&(q, seq), _)) = self.unacked.range((d, 0)..=(d, u64::MAX)).next() {
            debug_assert_eq!(q, d);
            if seq >= cum {
                break;
            }
            self.unacked.remove(&(q, seq));
        }
    }

    /// Dedup bookkeeping for an incoming `seq` from `src`; returns whether
    /// the sequence number is fresh (first time seen).
    fn record_recv(&mut self, src: ProcessId, seq: u64) -> bool {
        let s = src.index();
        if seq < self.recv_next[s] || self.recv_ooo[s].contains(&seq) {
            return false;
        }
        if seq == self.recv_next[s] {
            self.recv_next[s] += 1;
            while self.recv_ooo[s].remove(&self.recv_next[s]) {
                self.recv_next[s] += 1;
            }
        } else {
            self.recv_ooo[s].insert(seq);
        }
        true
    }
}

impl<A: Automaton> Automaton for Stubborn<A> {
    type Msg = StubbornMsg<A::Msg>;

    fn step(&mut self, input: StepInput<Self::Msg>, eff: &mut Effects<Self::Msg>) {
        self.ticks += 1;

        // Unwrap the delivered message: acks update the unacked buffer;
        // fresh data is handed to the inner automaton, duplicates become
        // null deliveries. Every Data gets an Ack back (even duplicates —
        // the original ack may have been lost).
        let mut inner_delivery = None;
        if let Some(env) = input.delivered {
            let from = env.from;
            match env.payload {
                StubbornMsg::Ack { cum } => self.apply_cum_ack(from, cum),
                StubbornMsg::Data { seq, cum, payload } => {
                    self.apply_cum_ack(from, cum);
                    if self.record_recv(from, seq) {
                        inner_delivery = Some(Envelope {
                            id: env.id,
                            from,
                            to: env.to,
                            sent_at: env.sent_at,
                            payload,
                        });
                    }
                    eff.send(from, StubbornMsg::Ack { cum: self.recv_next[from.index()] });
                }
            }
        }

        // The inner automaton takes its step (with a null delivery when
        // the wrapper absorbed a duplicate or an ack); a halted inner
        // drops deliveries like any halted process would.
        let mut inner_eff = Effects::new();
        if !self.inner.halted() {
            self.inner.step(
                StepInput {
                    me: input.me,
                    n: input.n,
                    now: input.now,
                    delivered: inner_delivery,
                    fd: input.fd,
                },
                &mut inner_eff,
            );
        }

        // Wrap the inner sends with fresh sequence numbers and remember
        // them until cumulatively acked. Fan-outs must be expanded here:
        // each directed link numbers its stream separately, so every
        // recipient's copy carries different (seq, cum) framing.
        for (to, m) in inner_eff.take_sends() {
            let seq = self.next_seq[to.index()];
            self.next_seq[to.index()] += 1;
            self.unacked.insert((to.0, seq), m.clone());
            eff.send(to, StubbornMsg::Data { seq, cum: self.recv_next[to.index()], payload: m });
        }
        if let Some(v) = inner_eff.decision {
            eff.decide(v);
        }
        if let Some(out) = inner_eff.emulated {
            eff.set_output(out);
        }
        for ev in inner_eff.op_events {
            eff.op_events.push(ev);
        }

        // The stubborn clock: every `period`-th own step resends the
        // whole unacked buffer (with up-to-date piggybacked acks).
        if self.ticks.is_multiple_of(self.period) {
            for (&(dst, seq), m) in &self.unacked {
                let to = ProcessId(dst);
                eff.send(
                    to,
                    StubbornMsg::Data { seq, cum: self.recv_next[to.index()], payload: m.clone() },
                );
            }
        }

        // Halt only once nothing is left to retransmit; a decided inner
        // automaton's last messages must still reach the other side.
        if (inner_eff.halt || self.inner.halted()) && self.unacked.is_empty() {
            eff.halt();
        }
    }

    fn halted(&self) -> bool {
        self.inner.halted() && self.unacked.is_empty()
    }

    fn quiescent(&self) -> bool {
        // With an empty unacked buffer the wrapper adds no effects of its
        // own on null steps, so quiescence reduces to the inner's (a
        // halted inner is vacuously quiescent).
        (self.inner.halted() || self.inner.quiescent()) && self.unacked.is_empty()
    }
}

/// Wraps every automaton of a system in a [`Stubborn`] layer (with the
/// default period).
pub fn stubborn_processes<A: Automaton>(procs: Vec<A>) -> Vec<Stubborn<A>> {
    let n = procs.len();
    procs.into_iter().map(|a| Stubborn::new(a, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Envelope;
    use sih_model::{ProcessId, Time, Value};

    /// Lower layer: emits its step count as a Leader output, sends one
    /// lower-tagged message to p1 on its first step.
    #[derive(Clone, Debug, Default)]
    struct CountingEmulator {
        steps: u32,
    }
    impl Automaton for CountingEmulator {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            if self.steps == 0 {
                eff.send(ProcessId(1), 42);
            }
            self.steps += 1;
            eff.set_output(FdOutput::Leader(ProcessId(self.steps)));
            let _ = input;
        }
    }

    /// Upper layer: decides the leader id it sees once it sees one ≥ 2.
    #[derive(Clone, Debug, Default)]
    struct LeaderConsumer {
        done: bool,
        got_upper_msg: bool,
    }
    impl Automaton for LeaderConsumer {
        type Msg = &'static str;
        fn step(&mut self, input: StepInput<&'static str>, eff: &mut Effects<&'static str>) {
            if input.delivered.is_some() {
                self.got_upper_msg = true;
            }
            if let FdOutput::Leader(p) = input.fd {
                if p.0 >= 2 && !self.done {
                    self.done = true;
                    eff.decide(Value(u64::from(p.0)));
                }
            }
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    fn step_stack(
        stack: &mut Stacked<CountingEmulator, LeaderConsumer>,
        delivered: Option<Envelope<Layered<u8, &'static str>>>,
    ) -> Effects<Layered<u8, &'static str>> {
        let mut eff = Effects::new();
        stack.step(
            StepInput { me: ProcessId(0), n: 2, now: Time(1), delivered, fd: FdOutput::Bot },
            &mut eff,
        );
        eff
    }

    #[test]
    fn upper_sees_lower_output_from_same_step() {
        let mut stack =
            Stacked::new(CountingEmulator::default(), LeaderConsumer::default(), FdOutput::Bot);
        // Step 1: lower outputs Leader(p1); upper sees it but 1 < 2.
        let eff = step_stack(&mut stack, None);
        assert_eq!(stack.current_output(), FdOutput::Leader(ProcessId(1)));
        assert!(eff.decision.is_none());
        // Lower's send is tagged Lower.
        assert!(matches!(eff.sends().next(), Some((_, Layered::Lower(42)))));
        // Reported emulated output defaults to the lower layer's.
        assert_eq!(eff.emulated, Some(FdOutput::Leader(ProcessId(1))));

        // Step 2: lower outputs Leader(p2); upper decides 2.
        let eff = step_stack(&mut stack, None);
        assert_eq!(eff.decision, Some(Value(2)));
        assert!(stack.upper().done);
        // Stack not halted: the lower emulator never halts.
        assert!(!stack.halted());
    }

    #[test]
    fn messages_route_to_their_layer() {
        let mut stack =
            Stacked::new(CountingEmulator::default(), LeaderConsumer::default(), FdOutput::Bot);
        let env = Envelope {
            id: crate::automaton::MsgId(0),
            from: ProcessId(1),
            to: ProcessId(0),
            sent_at: Time(0),
            payload: Layered::Upper("hello"),
        };
        let _ = step_stack(&mut stack, Some(env));
        assert!(stack.upper().got_upper_msg);
    }

    #[test]
    fn initial_output_visible_before_first_emulation_step() {
        let stack = Stacked::new(
            CountingEmulator::default(),
            LeaderConsumer::default(),
            FdOutput::EMPTY_TRUST,
        );
        assert_eq!(stack.current_output(), FdOutput::EMPTY_TRUST);
    }

    /// Inner automaton for the stubborn tests: sends one "hello" to p1 on
    /// its first step and counts every delivered payload.
    #[derive(Clone, Debug, Default)]
    struct OneShotSender {
        started: bool,
        received: Vec<&'static str>,
    }
    impl Automaton for OneShotSender {
        type Msg = &'static str;
        fn step(&mut self, input: StepInput<&'static str>, eff: &mut Effects<&'static str>) {
            if !self.started {
                self.started = true;
                eff.send(ProcessId(1), "hello");
            }
            if let Some(env) = input.delivered {
                self.received.push(env.payload);
            }
        }
    }

    fn stubborn_step(
        s: &mut Stubborn<OneShotSender>,
        me: ProcessId,
        delivered: Option<Envelope<StubbornMsg<&'static str>>>,
    ) -> Effects<StubbornMsg<&'static str>> {
        let mut eff = Effects::new();
        s.step(StepInput { me, n: 2, now: Time(1), delivered, fd: FdOutput::Bot }, &mut eff);
        eff
    }

    fn data_env(seq: u64, payload: &'static str) -> Envelope<StubbornMsg<&'static str>> {
        Envelope {
            id: crate::automaton::MsgId(7),
            from: ProcessId(0),
            to: ProcessId(1),
            sent_at: Time(0),
            payload: StubbornMsg::Data { seq, cum: 0, payload },
        }
    }

    #[test]
    fn stubborn_retransmits_until_acked() {
        let mut s = Stubborn::with_period(OneShotSender::default(), 2, 1);
        // First step: the inner send goes out wrapped with seq 0... and the
        // period-1 clock immediately re-sends it once more.
        let eff = stubborn_step(&mut s, ProcessId(0), None);
        let wrapped: Vec<_> = eff.sends().collect();
        assert_eq!(wrapped.len(), 2);
        assert!(matches!(wrapped[0].1, StubbornMsg::Data { seq: 0, payload: "hello", .. }));
        assert!(matches!(wrapped[1].1, StubbornMsg::Data { seq: 0, payload: "hello", .. }));
        assert_eq!(s.unacked_len(), 1);
        // Null steps keep retransmitting.
        let eff = stubborn_step(&mut s, ProcessId(0), None);
        assert_eq!(eff.send_count(), 1);
        // An ack covering seq 0 stops the retransmission.
        let ack = Envelope {
            id: crate::automaton::MsgId(9),
            from: ProcessId(1),
            to: ProcessId(0),
            sent_at: Time(0),
            payload: StubbornMsg::Ack { cum: 1 },
        };
        let eff = stubborn_step(&mut s, ProcessId(0), Some(ack));
        assert_eq!(s.unacked_len(), 0);
        assert_eq!(eff.send_count(), 0);
    }

    #[test]
    fn stubborn_receive_is_dedup_idempotent() {
        let mut s = Stubborn::with_period(OneShotSender::default(), 2, 64);
        // Burn the inner's first step (its own send) with a null step.
        let _ = stubborn_step(&mut s, ProcessId(1), None);
        // Deliver seq 0 three times: the inner sees "hello" exactly once,
        // but each copy is answered with an ack.
        for _ in 0..3 {
            let eff = stubborn_step(&mut s, ProcessId(1), Some(data_env(0, "hello")));
            assert!(
                matches!(eff.sends().next(), Some((ProcessId(0), StubbornMsg::Ack { cum: 1 }))),
                "every Data copy is acked: {:?}",
                eff.sends().collect::<Vec<_>>()
            );
        }
        assert_eq!(s.inner().received, vec!["hello"]);
        // Out-of-order arrival: seq 2 before seq 1, each exactly once.
        let _ = stubborn_step(&mut s, ProcessId(1), Some(data_env(2, "c")));
        let eff = stubborn_step(&mut s, ProcessId(1), Some(data_env(1, "b")));
        // The watermark jumps over the out-of-order hole: cum = 3.
        assert!(matches!(eff.sends().next(), Some((ProcessId(0), StubbornMsg::Ack { cum: 3 }))));
        let _ = stubborn_step(&mut s, ProcessId(1), Some(data_env(2, "c")));
        let _ = stubborn_step(&mut s, ProcessId(1), Some(data_env(1, "b")));
        assert_eq!(s.inner().received, vec!["hello", "c", "b"]);
    }

    #[test]
    fn stubborn_halts_only_after_drain_and_goes_quiescent() {
        #[derive(Clone, Debug, Default)]
        struct DecideAndReturn {
            done: bool,
        }
        impl Automaton for DecideAndReturn {
            type Msg = u8;
            fn step(&mut self, _input: StepInput<u8>, eff: &mut Effects<u8>) {
                if !self.done {
                    self.done = true;
                    eff.send(ProcessId(1), 42);
                    eff.decide(Value(1));
                    eff.halt();
                }
            }
            fn halted(&self) -> bool {
                self.done
            }
        }

        let mut s = Stubborn::with_period(DecideAndReturn::default(), 2, 4);
        let mut eff = Effects::new();
        s.step(
            StepInput { me: ProcessId(0), n: 2, now: Time(1), delivered: None, fd: FdOutput::Bot },
            &mut eff,
        );
        // Inner decided and returned, but the wrapper must keep running
        // until the send is acked.
        assert_eq!(eff.decision(), Some(Value(1)));
        assert!(!eff.halt_requested());
        assert!(!s.halted());
        assert!(!s.quiescent(), "unacked data still needs retransmitting");
        let ack = Envelope {
            id: crate::automaton::MsgId(3),
            from: ProcessId(1),
            to: ProcessId(0),
            sent_at: Time(1),
            payload: StubbornMsg::Ack { cum: 1 },
        };
        let mut eff = Effects::new();
        s.step(
            StepInput {
                me: ProcessId(0),
                n: 2,
                now: Time(2),
                delivered: Some(ack),
                fd: FdOutput::Bot,
            },
            &mut eff,
        );
        assert!(eff.halt_requested());
        assert!(s.halted());
        assert!(s.quiescent());
    }

    #[test]
    fn stubborn_processes_wraps_every_automaton() {
        let procs = stubborn_processes(vec![OneShotSender::default(), OneShotSender::default()]);
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].unacked_len(), 0);
        assert!(!procs[0].halted());
    }
}
