//! Layered automata: running an algorithm *on top of* an emulated failure
//! detector.
//!
//! The paper's reductions work by emulation: an algorithm (Figures 3, 5, 6)
//! maintains a local variable `output` using the real failure detector
//! `D`, and a consumer algorithm then uses that variable as if it were a
//! failure-detector module for the emulated detector `D'`. [`Stacked`]
//! wires the two together at each process:
//!
//! * the **lower** automaton steps with the run's real detector output and
//!   publishes its emulated output via [`Effects::set_output`];
//! * the **upper** automaton steps with the lower's current emulated
//!   output as *its* `queryFD()` result;
//! * protocol messages are tagged [`Layered::Lower`] / [`Layered::Upper`]
//!   and routed to their layer.
//!
//! Each engine step advances both layers once (message delivery goes to
//! the layer that owns the message; the other layer receives the null
//! message), which preserves the model's guarantee that a correct process
//! gives infinitely many steps to *both* tasks.
//!
//! [`Effects::set_output`]: crate::Effects::set_output

use crate::automaton::{Automaton, Effects, StepInput};
use sih_model::FdOutput;

/// A message of a two-layer protocol stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Layered<L, U> {
    /// A message of the emulation (lower) layer.
    Lower(L),
    /// A message of the consumer (upper) layer.
    Upper(U),
}

/// Which layer's emulated output the stack reports to the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReportLayer {
    /// Report the lower layer's emulated output (default): the trace's
    /// emulated history then records the emulation under test, even while
    /// a consumer runs on top.
    #[default]
    Lower,
    /// Report the upper layer's emulated output (for stacks whose upper
    /// layer is itself an emulator).
    Upper,
}

/// Two automata stacked at one process; see the module docs.
#[derive(Clone, Debug)]
pub struct Stacked<L: Automaton, U: Automaton> {
    lower: L,
    upper: U,
    emulated: FdOutput,
    report: ReportLayer,
}

impl<L: Automaton, U: Automaton> Stacked<L, U> {
    /// Stacks `upper` on top of `lower`; before the lower layer's first
    /// `set_output`, the upper layer's `queryFD()` returns
    /// `initial_output`.
    pub fn new(lower: L, upper: U, initial_output: FdOutput) -> Self {
        Stacked { lower, upper, emulated: initial_output, report: ReportLayer::Lower }
    }

    /// Selects which layer's emulated output the trace records.
    pub fn with_report(mut self, report: ReportLayer) -> Self {
        self.report = report;
        self
    }

    /// The lower (emulation) automaton.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    /// The upper (consumer) automaton.
    pub fn upper(&self) -> &U {
        &self.upper
    }

    /// The emulated output the upper layer currently sees.
    pub fn current_output(&self) -> FdOutput {
        self.emulated
    }
}

impl<L: Automaton, U: Automaton> Automaton for Stacked<L, U> {
    type Msg = Layered<L::Msg, U::Msg>;

    fn step(&mut self, input: StepInput<Self::Msg>, eff: &mut Effects<Self::Msg>) {
        // Route the delivered message (if any) to its layer.
        let (lower_msg, upper_msg) = match input.delivered {
            None => (None, None),
            Some(env) => match env.payload {
                Layered::Lower(payload) => (
                    Some(crate::automaton::Envelope {
                        id: env.id,
                        from: env.from,
                        to: env.to,
                        sent_at: env.sent_at,
                        payload,
                    }),
                    None,
                ),
                Layered::Upper(payload) => (
                    None,
                    Some(crate::automaton::Envelope {
                        id: env.id,
                        from: env.from,
                        to: env.to,
                        sent_at: env.sent_at,
                        payload,
                    }),
                ),
            },
        };

        // Lower layer steps with the real detector output.
        let mut lower_eff = Effects::new();
        self.lower.step(
            StepInput {
                me: input.me,
                n: input.n,
                now: input.now,
                delivered: lower_msg,
                fd: input.fd,
            },
            &mut lower_eff,
        );
        if let Some(out) = lower_eff.emulated {
            self.emulated = out;
        }

        // Upper layer steps with the emulated output.
        let mut upper_eff = Effects::new();
        if !self.upper.halted() {
            self.upper.step(
                StepInput {
                    me: input.me,
                    n: input.n,
                    now: input.now,
                    delivered: upper_msg,
                    fd: self.emulated,
                },
                &mut upper_eff,
            );
        } else if let Some(env) = upper_msg {
            // A message for a returned upper layer is dropped, as a halted
            // process would drop it.
            let _ = env;
        }

        // Merge effects.
        for (to, m) in lower_eff.sends {
            eff.send(to, Layered::Lower(m));
        }
        for (to, m) in upper_eff.sends {
            eff.send(to, Layered::Upper(m));
        }
        if let Some(v) = upper_eff.decision {
            eff.decide(v);
        }
        for ev in upper_eff.op_events {
            eff.op_events.push(ev);
        }
        let reported = match self.report {
            ReportLayer::Lower => lower_eff.emulated,
            ReportLayer::Upper => upper_eff.emulated,
        };
        if let Some(out) = reported {
            eff.set_output(out);
        }
        // The stack halts only when the upper layer does AND the lower
        // layer is not an ongoing emulation the rest of the system might
        // still read messages from. Emulators never halt, so in practice a
        // stacked process halts never; consumers' decisions are observed
        // via the trace. We still propagate an explicit upper halt if the
        // lower layer has also halted (both layers done).
        if (upper_eff.halt || self.upper.halted()) && self.lower.halted() {
            eff.halt();
        }
    }

    fn halted(&self) -> bool {
        self.lower.halted() && self.upper.halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Envelope;
    use sih_model::{ProcessId, Time, Value};

    /// Lower layer: emits its step count as a Leader output, sends one
    /// lower-tagged message to p1 on its first step.
    #[derive(Clone, Debug, Default)]
    struct CountingEmulator {
        steps: u32,
    }
    impl Automaton for CountingEmulator {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            if self.steps == 0 {
                eff.send(ProcessId(1), 42);
            }
            self.steps += 1;
            eff.set_output(FdOutput::Leader(ProcessId(self.steps)));
            let _ = input;
        }
    }

    /// Upper layer: decides the leader id it sees once it sees one ≥ 2.
    #[derive(Clone, Debug, Default)]
    struct LeaderConsumer {
        done: bool,
        got_upper_msg: bool,
    }
    impl Automaton for LeaderConsumer {
        type Msg = &'static str;
        fn step(&mut self, input: StepInput<&'static str>, eff: &mut Effects<&'static str>) {
            if input.delivered.is_some() {
                self.got_upper_msg = true;
            }
            if let FdOutput::Leader(p) = input.fd {
                if p.0 >= 2 && !self.done {
                    self.done = true;
                    eff.decide(Value(u64::from(p.0)));
                }
            }
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    fn step_stack(
        stack: &mut Stacked<CountingEmulator, LeaderConsumer>,
        delivered: Option<Envelope<Layered<u8, &'static str>>>,
    ) -> Effects<Layered<u8, &'static str>> {
        let mut eff = Effects::new();
        stack.step(
            StepInput { me: ProcessId(0), n: 2, now: Time(1), delivered, fd: FdOutput::Bot },
            &mut eff,
        );
        eff
    }

    #[test]
    fn upper_sees_lower_output_from_same_step() {
        let mut stack =
            Stacked::new(CountingEmulator::default(), LeaderConsumer::default(), FdOutput::Bot);
        // Step 1: lower outputs Leader(p1); upper sees it but 1 < 2.
        let eff = step_stack(&mut stack, None);
        assert_eq!(stack.current_output(), FdOutput::Leader(ProcessId(1)));
        assert!(eff.decision.is_none());
        // Lower's send is tagged Lower.
        assert!(matches!(eff.sends[0].1, Layered::Lower(42)));
        // Reported emulated output defaults to the lower layer's.
        assert_eq!(eff.emulated, Some(FdOutput::Leader(ProcessId(1))));

        // Step 2: lower outputs Leader(p2); upper decides 2.
        let eff = step_stack(&mut stack, None);
        assert_eq!(eff.decision, Some(Value(2)));
        assert!(stack.upper().done);
        // Stack not halted: the lower emulator never halts.
        assert!(!stack.halted());
    }

    #[test]
    fn messages_route_to_their_layer() {
        let mut stack =
            Stacked::new(CountingEmulator::default(), LeaderConsumer::default(), FdOutput::Bot);
        let env = Envelope {
            id: crate::automaton::MsgId(0),
            from: ProcessId(1),
            to: ProcessId(0),
            sent_at: Time(0),
            payload: Layered::Upper("hello"),
        };
        let _ = step_stack(&mut stack, Some(env));
        assert!(stack.upper().got_upper_msg);
    }

    #[test]
    fn initial_output_visible_before_first_emulation_step() {
        let stack = Stacked::new(
            CountingEmulator::default(),
            LeaderConsumer::default(),
            FdOutput::EMPTY_TRUST,
        );
        assert_eq!(stack.current_output(), FdOutput::EMPTY_TRUST);
    }
}
