//! Edge-case and property coverage for the Fenwick-backed
//! [`Network`] arrival queues: empty-queue delivery, delivery after
//! full-tombstone compaction/restart, and `oldest_sent_at`
//! monotonicity, cross-checked against a naive `Vec` reference model.

use proptest::prelude::*;
use sih_model::{ProcessId, Time};
use sih_runtime::Network;

const P0: ProcessId = ProcessId(0);

#[test]
#[should_panic(expected = "delivery index")]
fn delivering_from_an_empty_queue_panics() {
    let mut net: Network<u8> = Network::new(2);
    net.deliver(P0, 0);
}

#[test]
#[should_panic(expected = "delivery index")]
fn delivering_past_the_alive_count_panics() {
    let mut net: Network<u8> = Network::new(2);
    net.send(ProcessId(1), P0, Time(1), 7);
    net.deliver(P0, 1);
}

/// Drains queues large enough to cross the compaction threshold (64
/// slots, alive < half) from both ends, then refills after the queue has
/// gone all-tombstone — exercising `compact()` and the cleared-queue
/// restart in `push()` — and checks FIFO payload order throughout.
#[test]
fn delivery_survives_full_tombstone_compaction_and_restart() {
    let mut net: Network<u32> = Network::new(2);
    for round in 0..3u32 {
        let base = round * 1000;
        for i in 0..100u32 {
            net.send(ProcessId(1), P0, Time(u64::from(round) + 1), base + i);
        }
        assert_eq!(net.pending_count(P0), 100);
        // Alternate oldest / youngest so tombstones accumulate at both
        // ends and the head-advance and Fenwick-select paths both run.
        let mut expected: Vec<u32> = (base..base + 100).collect();
        while !expected.is_empty() {
            let idx = if expected.len().is_multiple_of(2) { 0 } else { expected.len() - 1 };
            let env = net.deliver(P0, idx);
            assert_eq!(env.payload, expected.remove(idx));
            // The queue's alive view must match the reference exactly.
            let alive: Vec<u32> = net.pending(P0).map(|e| *e.payload).collect();
            assert_eq!(alive, expected);
        }
        assert_eq!(net.pending_count(P0), 0);
        assert_eq!(net.oldest_sent_at(P0), None);
    }
    assert_eq!(net.delivered_count(), 300);
}

#[derive(Clone, Debug)]
enum Op {
    /// Send with this time increment (0 = same instant as the last send).
    Send(u64),
    /// Deliver the op-th pending message, modulo the current queue length.
    Deliver(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u64..3).prop_map(Op::Send), (0usize..128).prop_map(Op::Deliver),]
}

proptest! {
    /// Under arbitrary interleavings of sends and deliveries:
    /// * the queue agrees with a naive Vec reference model,
    /// * `oldest_sent_at` is exactly the reference front's send time, and
    /// * it never decreases while the queue stays nonempty (delivering
    ///   the front only ever exposes a later-or-equal arrival).
    #[test]
    fn oldest_sent_at_is_monotone_and_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut net: Network<u64> = Network::new(2);
        let mut reference: Vec<(Time, u64)> = Vec::new(); // (sent_at, payload)
        let mut now = Time(0);
        let mut next_payload = 0u64;
        let mut last_oldest: Option<Time> = None;
        for op in ops {
            match op {
                Op::Send(dt) => {
                    now = Time(now.0 + dt);
                    net.send(ProcessId(1), P0, now, next_payload);
                    reference.push((now, next_payload));
                    next_payload += 1;
                }
                Op::Deliver(raw) => {
                    if reference.is_empty() {
                        continue;
                    }
                    let idx = raw % reference.len();
                    let env = net.deliver(P0, idx);
                    let (sent_at, payload) = reference.remove(idx);
                    prop_assert_eq!(env.payload, payload);
                    prop_assert_eq!(env.sent_at, sent_at);
                }
            }
            prop_assert_eq!(net.pending_count(P0), reference.len());
            let oldest = net.oldest_sent_at(P0);
            prop_assert_eq!(oldest, reference.first().map(|&(t, _)| t));
            if let (Some(prev), Some(cur)) = (last_oldest, oldest) {
                prop_assert!(cur >= prev, "oldest_sent_at went backwards: {cur:?} < {prev:?}");
            }
            last_oldest = oldest;
            // oldest_index is always the front of the alive sequence.
            if let Some(&(_, payload)) = reference.first() {
                prop_assert_eq!(net.oldest_index(P0), Some(0));
                prop_assert_eq!(net.pending(P0).next().map(|e| *e.payload), Some(payload));
            } else {
                prop_assert_eq!(net.oldest_index(P0), None);
            }
        }
    }
}
