//! Replay determinism: the property the impossibility constructions
//! stand on. Any run, re-executed from its recorded script with the same
//! oracle, must be bit-for-bit identical.

use sih::agreement::{distinct_proposals, fig2_processes, fig4_processes};
use sih::detectors::{Sigma, SigmaK};
use sih::model::{FailurePattern, ProcessId, ProcessSet};
use sih::runtime::{Event, FairScheduler, ScriptedScheduler, Simulation};

#[test]
fn fig2_runs_replay_exactly() {
    for seed in 0..10 {
        let n = 5;
        let pattern = FailurePattern::all_correct(n);
        let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed);

        let mut original = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern.clone());
        original.run(&mut FairScheduler::new(seed), &sigma, 60_000);

        let mut replay = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern);
        let mut sched = ScriptedScheduler::new(original.script().to_vec());
        replay.run(&mut sched, &sigma, u64::MAX);

        assert_eq!(original.trace().events(), replay.trace().events(), "seed {seed}");
        assert_eq!(original.trace().distinct_decisions(), replay.trace().distinct_decisions());
    }
}

#[test]
fn fig4_runs_replay_exactly() {
    for seed in 0..5 {
        let n = 6;
        let active: ProcessSet = (0..4u32).map(ProcessId).collect();
        let pattern =
            FailurePattern::crashed_from_start(n, ProcessSet::from_iter([4, 5].map(ProcessId)));
        let det = SigmaK::new(active, &pattern, seed);

        let mut original = Simulation::new(fig4_processes(&distinct_proposals(n)), pattern.clone());
        original.run(&mut FairScheduler::new(seed), &det, 120_000);

        let mut replay = Simulation::new(fig4_processes(&distinct_proposals(n)), pattern);
        let mut sched = ScriptedScheduler::new(original.script().to_vec());
        replay.run(&mut sched, &det, u64::MAX);

        assert_eq!(original.trace().events(), replay.trace().events(), "seed {seed}");
    }
}

#[test]
fn prefix_replay_preserves_every_event() {
    // Replaying HALF a run must reproduce exactly the first half of its
    // events — the precise mechanism of Lemma 7's run r′.
    let n = 4;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 3);

    let mut original = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern.clone());
    original.run(&mut FairScheduler::new(3), &sigma, 60_000);
    let script = original.script().to_vec();
    let half = script.len() / 2;

    let mut replay = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern);
    let mut sched = ScriptedScheduler::new(script[..half].to_vec());
    replay.run(&mut sched, &sigma, u64::MAX);

    let original_events: Vec<&Event> =
        original.trace().events().iter().take(replay.trace().events().len()).collect();
    let replay_events: Vec<&Event> = replay.trace().events().iter().collect();
    assert_eq!(original_events, replay_events);
}

#[test]
fn different_seeds_typically_differ() {
    // Sanity: the scheduler seed actually matters (otherwise replay
    // determinism would be vacuous).
    let n = 5;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 1);
    let mut a = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern.clone());
    a.run(&mut FairScheduler::new(1), &sigma, 60_000);
    let mut b = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern);
    b.run(&mut FairScheduler::new(2), &sigma, 60_000);
    assert_ne!(a.trace().events(), b.trace().events());
}
