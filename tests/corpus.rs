//! Tier-1 replay of the committed counterexample corpus.
//!
//! Every `tests/corpus/*.schedule` file is a minimized negative witness
//! recorded from an intentionally weakened detector (or the sound
//! anti-Ω finiteness witness). This test strict-replays each one and
//! fails if any entry is stale — different verdict, or a script that no
//! longer executes verbatim — and additionally proves the whole
//! record → shrink → replay pipeline still works from scratch.

use sih_lab::repro::{
    record_first_violation, replay, shrink, verify_corpus_dir, CorpusEntry, ReplayMode,
};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_committed_schedule_reproduces_exactly() {
    let entries = verify_corpus_dir(&corpus_dir(), 1).expect("reading tests/corpus");
    assert!(!entries.is_empty(), "tests/corpus is empty");
    let failures: Vec<&CorpusEntry> = entries.iter().filter(|e| !e.ok).collect();
    assert!(
        failures.is_empty(),
        "stale corpus entries:\n{}",
        failures.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn corpus_covers_every_planted_violation_class() {
    let entries = verify_corpus_dir(&corpus_dir(), 1).expect("reading tests/corpus");
    let all = entries.iter().map(|e| e.detail.clone()).collect::<Vec<_>>().join("\n");
    for verdict in
        ["violation:agreement", "violation:not-linearizable", "violation:finiteness", "panic"]
    {
        assert!(all.contains(&format!("`{verdict}`")), "no corpus entry reproduces `{verdict}`");
    }
}

#[test]
fn corpus_report_is_identical_across_thread_counts() {
    let dir = corpus_dir();
    let one = verify_corpus_dir(&dir, 1).expect("threads=1");
    for threads in [2, 8] {
        let other = verify_corpus_dir(&dir, threads).expect("threaded run");
        assert_eq!(one, other, "corpus report differs at threads={threads}");
    }
}

/// The acceptance pipeline of the harness, from scratch: capture the
/// planted weakened-Σ_S quorum violation, shrink it to ≤ 25 % of the
/// recorded length, and replay the minimized schedule to the identical
/// verdict — with the shrink itself independent of thread count (it is
/// serial by construction; we re-run it to prove determinism).
#[test]
fn fresh_abd_quorum_violation_records_shrinks_and_replays() {
    let recorded = record_first_violation("abd-weak-quorum", 1, 64)
        .expect("workload is registered")
        .expect("the planted quorum violation must be capturable within 64 seeds");
    assert_eq!(recorded.verdict, "violation:not-linearizable");

    let (small, report) = shrink(&recorded).expect("shrink runs");
    assert_eq!(report.original_len, recorded.choices.len());
    assert!(
        report.final_len * 4 <= report.original_len,
        "shrunk to {} of {} choices — more than 25 %",
        report.final_len,
        report.original_len
    );
    assert_eq!(small.verdict, recorded.verdict, "shrinking changed the verdict");

    let rep = replay(&small, ReplayMode::Strict).expect("replay runs");
    assert!(rep.matches, "minimized schedule is not strict-reproducible: {}", rep.verdict);

    let (again, report_again) = shrink(&recorded).expect("second shrink runs");
    assert_eq!(small, again, "shrinking is not deterministic");
    assert_eq!(report, report_again);

    // Round-trip through the text format, as the corpus stores it.
    let parsed = sih::runtime::Schedule::parse(&small.to_text()).expect("roundtrip parses");
    assert_eq!(parsed, small);
}
