//! Bounded exhaustive exploration: safety of the paper's algorithms over
//! **every** schedule of small systems, not just sampled ones.

use sih::agreement::{
    check_k_agreement_safety, distinct_proposals, fig2_processes, fig4_processes,
};
use sih::detectors::{Sigma, SigmaK};
use sih::model::{FailurePattern, ProcessId, ProcessSet};
use sih::runtime::{explore, Simulation};

#[test]
fn fig2_safety_over_all_schedules_n3() {
    // n = 3, all correct, σ active pair {p0, p1}: every schedule up to 9
    // steps preserves agreement (≤ 2 distinct) and validity.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "violation: {:?}", result.violation);
    assert!(result.states > 10_000, "exploration was nontrivial: {}", result.states);
}

#[test]
fn fig2_safety_over_all_schedules_with_active_crash() {
    // p1 (an active) crashes at step 4: all schedules up to depth 9.
    let n = 3;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), sih::model::Time(4)).build();
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 1);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "violation: {:?}", result.violation);
}

#[test]
fn fig4_safety_over_all_schedules_n3_k1() {
    // n = 3, k = 1 (active pair {p0, p1}): ≤ 2 distinct decisions on
    // every schedule up to 8 steps.
    let n = 3;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let det = SigmaK::new(active, &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig4_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &det, 8, 3, &mut check);
    assert!(result.ok(), "violation: {:?}", result.violation);
    assert!(result.states > 1_000);
}

#[test]
fn exploration_would_catch_a_real_violation() {
    // Negative control: an impossible invariant must be reported, with
    // the schedule that reaches it.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let sim = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern);
    let mut check = |s: &Simulation<_>| {
        if s.trace().decided().len() >= 2 {
            Err("two processes decided (planted violation)".to_owned())
        } else {
            Ok(())
        }
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    let (script, msg) = result.violation.expect("planted violation must be found");
    assert!(msg.contains("planted"));
    assert!(script.len() >= 2);
}
