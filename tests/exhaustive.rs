//! Bounded exhaustive exploration: safety of the paper's algorithms over
//! **every** schedule of small systems, not just sampled ones.

use sih::agreement::{
    check_k_agreement_safety, distinct_proposals, fig2_processes, fig4_processes,
};
use sih::detectors::{Sigma, SigmaK};
use sih::model::{FailurePattern, ProcessId, ProcessSet, Time};
use sih::runtime::{explore, explore_par, explore_with, ExploreConfig, Simulation};

#[test]
fn fig2_safety_over_all_schedules_n3() {
    // n = 3, all correct, σ active pair {p0, p1}: every schedule up to 9
    // steps preserves agreement (≤ 2 distinct) and validity.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "violation: {:?}", result.violation);
    // The reduced explorer must still have done real work — and must have
    // actually reduced it.
    assert!(result.states > 0 && result.terminals > 0);
    assert!(result.deduped > 0, "dedup never fired: {result:?}");
    assert!(result.pruned > 0, "sleep sets never fired: {result:?}");
    assert!(result.table_bytes > 0);
}

#[test]
fn fig2_safety_over_all_schedules_with_active_crash() {
    // p1 (an active) crashes at step 4: all schedules up to depth 9.
    let n = 3;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), Time(4)).build();
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 1);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "violation: {:?}", result.violation);
}

#[test]
fn fig4_safety_over_all_schedules_n3_k1() {
    // n = 3, k = 1 (active pair {p0, p1}): ≤ 2 distinct decisions on
    // every schedule up to 8 steps.
    let n = 3;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let det = SigmaK::new(active, &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig4_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &det, 8, 3, &mut check);
    assert!(result.ok(), "violation: {:?}", result.violation);
    assert!(result.states > 0 && result.terminals > 0);
    // Reductions stay ON under a finite delivery cap: capped dedup keys
    // on the arrival-order-sensitive fingerprint (equal ordered queues ⇒
    // identical capped delivery menus forever), and sleep sets are
    // cap-stable because commuting a sibling step past a sleeping choice
    // never renumbers the delivery index it names. Both must have fired…
    assert!(result.deduped > 0, "dedup never fired under the cap: {result:?}");
    assert!(result.pruned > 0, "sleep sets never fired under the cap: {result:?}");
    assert!(result.table_bytes > 0);

    // …and the capped reduced verdict must agree with the capped *and*
    // the uncapped unreduced enumerations (the ground truth no
    // equivalence argument touches).
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let capped_plain = explore_with(
        &sim,
        &det,
        &ExploreConfig::new(8).max_deliveries(3).dedup(false).por(false),
        &mut check,
    );
    assert_eq!(result.ok(), capped_plain.ok(), "capped reduced vs capped unreduced");
    assert!(result.states < capped_plain.states, "cap-sound reductions did nothing");
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let uncapped_plain =
        explore_with(&sim, &det, &ExploreConfig::new(8).dedup(false).por(false), &mut check);
    assert_eq!(result.ok(), uncapped_plain.ok(), "capped reduced vs uncapped unreduced");
}

#[test]
fn exploration_would_catch_a_real_violation() {
    // Negative control: an impossible invariant must be reported, with
    // the schedule that reaches it.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let sim = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern);
    let mut check = |s: &Simulation<_>| {
        if s.trace().decided().len() >= 2 {
            Err("two processes decided (planted violation)".to_owned())
        } else {
            Ok(())
        }
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    let (script, msg) = result.violation.expect("planted violation must be found");
    assert!(msg.contains("planted"));
    assert!(script.len() >= 2);
}

/// Reduction soundness: dedup + sleep sets must agree with unreduced
/// exploration on the *verdict* — both on a passing scenario (the Fig. 2
/// crash run) and on a failing one (a planted mutant invariant), where the
/// reduced run must also report the same lexicographically-least script.
#[test]
fn reductions_preserve_the_verdict() {
    let n = 3;
    let depth = 8;

    // Passing scenario: Fig. 2 with an active crash — no violation, with
    // or without reductions.
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), Time(4)).build();
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 1);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let unreduced =
        explore_with(&sim, &sigma, &ExploreConfig::new(depth).dedup(false).por(false), &mut check);
    let reduced = explore_with(&sim, &sigma, &ExploreConfig::new(depth), &mut check);
    assert_eq!(unreduced.violation, None);
    assert_eq!(reduced.violation, None);
    assert!(
        reduced.states < unreduced.states,
        "reduction did nothing: {} vs {}",
        reduced.states,
        unreduced.states
    );

    // Failing scenario: a planted mutant invariant ("no two processes may
    // decide") that every exhaustive run must refute — and both runs must
    // refute it with the same lexicographically-least choice script.
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    let mut mutant = |s: &Simulation<_>| {
        if s.trace().decided().len() >= 2 {
            Err("two processes decided (planted violation)".to_owned())
        } else {
            Ok(())
        }
    };
    let unreduced =
        explore_with(&sim, &sigma, &ExploreConfig::new(depth).dedup(false).por(false), &mut mutant);
    let reduced = explore_with(&sim, &sigma, &ExploreConfig::new(depth), &mut mutant);
    let (unreduced_script, _) = unreduced.violation.expect("unreduced run must find the mutant");
    let (reduced_script, _) = reduced.violation.expect("reduced run must find the mutant");
    assert_eq!(unreduced_script, reduced_script, "reduction changed the reported script");
}

/// The full [`sih::runtime::ExploreResult`] — every counter and the
/// violation script — must be bitwise identical for any thread count, and
/// must match the serial run of the same configuration.
#[test]
fn parallel_exploration_is_thread_count_independent() {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let make_check = || {
        let proposals = proposals.clone();
        move |s: &Simulation<_>| {
            check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
        }
    };

    for cfg in [
        ExploreConfig::new(9).frontier_depth(3),
        // Source-DPOR carries sleep sets and vector clocks into the
        // frontier jobs; its counters must stay worker-count-invariant
        // too — including with the auto-sized frontier (depth 0).
        ExploreConfig::new(9).dpor(true).frontier_depth(3),
        ExploreConfig::new(9).dpor(true),
    ] {
        let serial = explore_with(&sim, &sigma, &cfg, &mut make_check());
        for threads in [1, 2, 8] {
            let par = explore_par(&sim, &sigma, &cfg.threads(threads), make_check);
            assert_eq!(par, serial, "threads={threads} diverged from the serial run ({cfg:?})");
        }
    }
    let cfg = ExploreConfig::new(9).frontier_depth(3);

    // Same determinism when a violation is present: the planted mutant's
    // script must not depend on the thread count either.
    let make_mutant = || {
        |s: &Simulation<_>| {
            if s.trace().decided().len() >= 2 {
                Err("two processes decided (planted violation)".to_owned())
            } else {
                Ok(())
            }
        }
    };
    let serial = explore_with(&sim, &sigma, &cfg, &mut make_mutant());
    assert!(serial.violation.is_some());
    for threads in [1, 2, 8] {
        let par = explore_par(&sim, &sigma, &cfg.threads(threads), make_mutant);
        assert_eq!(par, serial, "threads={threads} diverged on the violating run");
    }
}
