//! Systematic failure injection: for small systems, crash **every**
//! process at **every** early time and check the paper's algorithms
//! survive — a denser sweep than random patterns can give.

use sih::agreement::{check_k_set_agreement, check_k_set_agreement_degraded, distinct_proposals};
use sih::detectors::{check_anti_omega, check_sigma};
use sih::model::{FailurePattern, LinkFaultPlan, ProcessId, ProcessSet, Time};
use sih::pipeline;
use sih::runtime::LivenessVerdict;

#[test]
fn fig2_survives_every_single_crash_time() {
    let n = 4;
    for victim in 0..n as u32 {
        for crash_t in 1..=12u64 {
            let pattern =
                FailurePattern::builder(n).crash_at(ProcessId(victim), Time(crash_t)).build();
            let tr = pipeline::run_fig2(&pattern, ProcessId(0), ProcessId(1), crash_t, 150_000);
            check_k_set_agreement(&tr, &pattern, &distinct_proposals(n), n - 1)
                .unwrap_or_else(|e| panic!("victim p{victim} at t{crash_t}: {e}"));
        }
    }
}

#[test]
fn fig2_survives_every_double_crash() {
    let n = 4;
    for v1 in 0..n as u32 {
        for v2 in (v1 + 1)..n as u32 {
            for crash_t in [1u64, 5, 15] {
                let pattern = FailurePattern::builder(n)
                    .crash_at(ProcessId(v1), Time(crash_t))
                    .crash_at(ProcessId(v2), Time(crash_t + 3))
                    .build();
                let tr = pipeline::run_fig2(&pattern, ProcessId(0), ProcessId(1), crash_t, 150_000);
                check_k_set_agreement(&tr, &pattern, &distinct_proposals(n), n - 1)
                    .unwrap_or_else(|e| panic!("p{v1},p{v2} at t{crash_t}: {e}"));
            }
        }
    }
}

#[test]
fn fig4_survives_every_single_crash_time() {
    let n = 5;
    let k = 2;
    let active: ProcessSet = (0..4u32).map(ProcessId).collect();
    for victim in 0..n as u32 {
        for crash_t in [1u64, 4, 9, 20] {
            let pattern =
                FailurePattern::builder(n).crash_at(ProcessId(victim), Time(crash_t)).build();
            let tr = pipeline::run_fig4(&pattern, active, crash_t, 250_000);
            check_k_set_agreement(&tr, &pattern, &distinct_proposals(n), n - k)
                .unwrap_or_else(|e| panic!("victim p{victim} at t{crash_t}: {e}"));
        }
    }
}

#[test]
fn fig2_survives_every_crash_x_partition_product() {
    // The crash × link-fault product: every victim crashed early, crossed
    // with a healing drop window on every directed link. The stubborn
    // layer must re-deliver what the window ate, so every run is not just
    // safe but Live.
    let n = 4;
    for victim in 0..n as u32 {
        let pattern = FailurePattern::builder(n).crash_at(ProcessId(victim), Time(5)).build();
        for src in 0..n as u32 {
            for dst in 0..n as u32 {
                if src == dst {
                    continue;
                }
                let plan = LinkFaultPlan::builder(n)
                    .drop_link(ProcessId(src), ProcessId(dst), Time::ZERO, Some(Time(300)))
                    .build();
                let (tr, outcome) = pipeline::run_fig2_faulty(
                    &pattern,
                    &plan,
                    ProcessId(0),
                    ProcessId(1),
                    u64::from(victim * 16 + src * 4 + dst),
                    400_000,
                );
                let verdict = check_k_set_agreement_degraded(
                    &tr,
                    &pattern,
                    &distinct_proposals(n),
                    n - 1,
                    outcome.reason,
                )
                .unwrap_or_else(|e| panic!("victim p{victim}, drop p{src}→p{dst}: {e}"));
                assert_eq!(
                    verdict,
                    LivenessVerdict::Live,
                    "victim p{victim}, drop p{src}→p{dst}: healed faults must not cost liveness"
                );
            }
        }
    }
}

#[test]
fn fig4_survives_every_crash_x_partition_product() {
    let n = 4;
    let k = 1;
    let active: ProcessSet = (0..2 * k as u32).map(ProcessId).collect();
    for victim in 0..n as u32 {
        let pattern = FailurePattern::builder(n).crash_at(ProcessId(victim), Time(5)).build();
        for src in 0..n as u32 {
            for dst in 0..n as u32 {
                if src == dst {
                    continue;
                }
                let plan = LinkFaultPlan::builder(n)
                    .drop_link(ProcessId(src), ProcessId(dst), Time::ZERO, Some(Time(300)))
                    .build();
                let (tr, outcome) = pipeline::run_fig4_faulty(
                    &pattern,
                    &plan,
                    active,
                    u64::from(victim * 16 + src * 4 + dst),
                    400_000,
                );
                let verdict = check_k_set_agreement_degraded(
                    &tr,
                    &pattern,
                    &distinct_proposals(n),
                    n - k,
                    outcome.reason,
                )
                .unwrap_or_else(|e| panic!("victim p{victim}, drop p{src}→p{dst}: {e}"));
                assert_eq!(
                    verdict,
                    LivenessVerdict::Live,
                    "victim p{victim}, drop p{src}→p{dst}: healed faults must not cost liveness"
                );
            }
        }
    }
}

#[test]
fn fig3_emulation_survives_every_single_crash_time() {
    let n = 4;
    let pair = ProcessSet::from_iter([0, 1].map(ProcessId));
    for victim in 0..n as u32 {
        for crash_t in [1u64, 6, 14] {
            let pattern =
                FailurePattern::builder(n).crash_at(ProcessId(victim), Time(crash_t)).build();
            let tr = pipeline::run_fig3(&pattern, ProcessId(0), ProcessId(1), crash_t, 6_000);
            check_sigma(tr.emulated_history(), &pattern, pair)
                .unwrap_or_else(|e| panic!("victim p{victim} at t{crash_t}: {e}"));
        }
    }
}

#[test]
fn fig6_emulation_survives_every_single_crash_time() {
    let n = 4;
    for victim in 0..n as u32 {
        for crash_t in [1u64, 6, 14] {
            let pattern =
                FailurePattern::builder(n).crash_at(ProcessId(victim), Time(crash_t)).build();
            let tr = pipeline::run_fig6(&pattern, ProcessId(0), ProcessId(1), crash_t, 25_000);
            check_anti_omega(tr.emulated_history(), &pattern)
                .unwrap_or_else(|e| panic!("victim p{victim} at t{crash_t}: {e}"));
        }
    }
}
