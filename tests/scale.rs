//! Scale sanity: the simulator and the paper's algorithms at larger `n`
//! (the `ProcessSet` bitset caps the system at 64 processes — exercise
//! that boundary too).

use sih::agreement::{check_k_set_agreement, distinct_proposals};
use sih::model::{FailurePattern, NoDetector, ProcessId, ProcessSet, Value};
use sih::pipeline;
use sih::runtime::{Automaton, Effects, FairScheduler, Simulation, StepInput};

#[test]
fn fig2_at_n_32() {
    for seed in 0..2 {
        let pattern = FailurePattern::all_correct(32);
        let tr = pipeline::run_fig2(&pattern, ProcessId(0), ProcessId(1), seed, 400_000);
        check_k_set_agreement(&tr, &pattern, &distinct_proposals(32), 31).unwrap();
    }
}

#[test]
fn fig4_at_n_24_k_8() {
    let active: ProcessSet = (0..16u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(24);
    let tr = pipeline::run_fig4(&pattern, active, 1, 600_000);
    check_k_set_agreement(&tr, &pattern, &distinct_proposals(24), 16).unwrap();
}

#[test]
fn simulator_at_the_64_process_boundary() {
    #[derive(Clone, Debug, Default)]
    struct CountAndDecide {
        steps: u32,
    }
    impl Automaton for CountAndDecide {
        type Msg = u8;
        fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
            self.steps += 1;
            if self.steps == 1 {
                // Everyone floods once: 64 × 64 messages.
                eff.send_all(input.n, 1);
            }
            if self.steps == 3 {
                eff.decide(Value::of_process(input.me));
                eff.halt();
            }
        }
        fn halted(&self) -> bool {
            self.steps >= 3
        }
    }
    let n = 64;
    let pattern = FailurePattern::all_correct(n);
    assert_eq!(pattern.all(), ProcessSet::full(64));
    let mut sim = Simulation::new(vec![CountAndDecide::default(); n], pattern.clone());
    let outcome = sim.run(&mut FairScheduler::new(3), &NoDetector, 2_000);
    assert!(sim.all_correct_halted(), "{outcome:?}");
    assert_eq!(sim.trace().decided().len(), 64);
    assert_eq!(sim.trace().messages_sent(), 64 * 64);
}

#[test]
fn quorum_sigma_at_n_20() {
    use sih::detectors::{check_sigma_s, QuorumSigma};
    let n = 20;
    let pattern = FailurePattern::all_correct(n);
    let procs = (0..n).map(|_| QuorumSigma::full(n)).collect();
    let mut sim = Simulation::new(procs, pattern.clone());
    let mut sched = FairScheduler::new(5);
    sim.run(&mut sched, &NoDetector, 20_000);
    check_sigma_s(sim.trace().emulated_history(), &pattern, ProcessSet::full(n)).unwrap();
}
