//! Property-based tests (proptest) over the public API: randomized
//! patterns, seeds and workloads must never violate the paper's safety
//! properties or the detector specifications.

use proptest::prelude::*;
use sih::agreement::{check_k_agreement_safety, check_k_set_agreement, distinct_proposals};
use sih::detectors::{
    check_anti_omega, check_sigma, check_sigma_k, check_sigma_s, sample_history, AntiOmega, Sigma,
    SigmaK, SigmaMode, SigmaS,
};
use sih::model::{FailureDetector, FailurePattern, ProcessId, ProcessSet, Time};
use sih::pipeline;
use sih::registers::{check_linearizable, WorkloadSpec};

/// A random failure pattern with at least one correct process.
fn arb_pattern(n: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec(proptest::option::of(0u64..100), n).prop_filter_map(
        "at least one correct process",
        move |crashes| {
            if crashes.iter().all(Option::is_some) {
                return None;
            }
            let mut b = FailurePattern::builder(n);
            for (i, c) in crashes.iter().enumerate() {
                if let Some(t) = c {
                    b = if *t == 0 {
                        b.crash_from_start(ProcessId(i as u32))
                    } else {
                        b.crash_at(ProcessId(i as u32), Time(*t))
                    };
                }
            }
            Some(b.build())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fig2_always_satisfies_set_agreement(
        pattern in arb_pattern(5),
        seed in 0u64..1_000,
    ) {
        let n = pattern.n();
        let tr = pipeline::run_fig2(&pattern, ProcessId(0), ProcessId(1), seed, 150_000);
        check_k_set_agreement(&tr, &pattern, &distinct_proposals(n), n - 1)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn fig4_always_satisfies_nk_agreement(
        pattern in arb_pattern(6),
        seed in 0u64..1_000,
        k in 1usize..=3,
    ) {
        let n = pattern.n();
        let active: ProcessSet = (0..2 * k as u32).map(ProcessId).collect();
        let tr = pipeline::run_fig4(&pattern, active, seed, 200_000);
        check_k_set_agreement(&tr, &pattern, &distinct_proposals(n), n - k)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn sigma_oracle_histories_always_legal(
        pattern in arb_pattern(5),
        seed in 0u64..1_000,
        generous in any::<bool>(),
    ) {
        let mode = if generous { SigmaMode::Generous } else { SigmaMode::Reticent };
        let d = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed).with_mode(mode);
        let h = sample_history(&d, pattern.n(), d.stabilization_time() + 40);
        check_sigma(&h, &pattern, d.active())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn sigma_k_oracle_histories_always_legal(
        pattern in arb_pattern(6),
        seed in 0u64..1_000,
        k in 1usize..=3,
    ) {
        let active: ProcessSet = (0..2 * k as u32).map(ProcessId).collect();
        let d = SigmaK::new(active, &pattern, seed);
        let h = sample_history(&d, pattern.n(), d.stabilization_time() + 40);
        check_sigma_k(&h, &pattern, active)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn sigma_s_oracle_histories_always_legal(
        pattern in arb_pattern(5),
        seed in 0u64..1_000,
    ) {
        let s = ProcessSet::full(pattern.n());
        let d = SigmaS::new(s, &pattern, seed);
        let h = sample_history(&d, pattern.n(), d.stabilization_time() + 40);
        check_sigma_s(&h, &pattern, s)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn anti_omega_oracle_histories_always_legal(
        pattern in arb_pattern(4),
        seed in 0u64..1_000,
    ) {
        let d = AntiOmega::new(&pattern, seed);
        let h = sample_history(&d, pattern.n(), d.stabilization_time() + 40);
        check_anti_omega(&h, &pattern)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn abd_histories_always_linearizable(
        seed in 0u64..1_000,
        read_ratio in 0.0f64..=1.0,
    ) {
        // Failure-free keeps run lengths predictable; crash cases are
        // covered by unit and integration tests.
        let pattern = FailurePattern::all_correct(4);
        let s: ProcessSet = (0..2u32).map(ProcessId).collect();
        let spec = WorkloadSpec { ops_per_process: 3, read_ratio, seed };
        let (_, ops) = pipeline::run_register_workload(&pattern, s, spec.scripts(s), seed, 300_000);
        check_linearizable(&ops, None)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn fig6_emulations_always_legal_anti_omega(
        pattern in arb_pattern(4),
        seed in 0u64..1_000,
    ) {
        let tr = pipeline::run_fig6(&pattern, ProcessId(0), ProcessId(1), seed, 25_000);
        check_anti_omega(tr.emulated_history(), &pattern)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn fig2_safety_holds_even_mid_run(
        seed in 0u64..1_000,
        budget in 10u64..600,
    ) {
        // Agreement/validity are safety properties: they must hold at
        // every prefix, not only at termination.
        let pattern = FailurePattern::all_correct(4);
        let proposals = distinct_proposals(4);
        let tr = pipeline::run_fig2(&pattern, ProcessId(0), ProcessId(1), seed, budget);
        check_k_agreement_safety(&tr, &proposals, 3)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}
