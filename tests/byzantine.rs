//! Byzantine adversary tier, end to end: deterministic mutation sweeps
//! across thread counts, Schedule v1/v2 round-trips over the committed
//! corpus, fresh record → shrink → replay of Byzantine witnesses, the
//! network counter balance under tampering, and the differential armor
//! suite — full armor must make every attacked run *bit-identical* to
//! its honest baseline under the same schedule.

use proptest::prelude::*;
use sih::agreement::{
    check_k_agreement_safety, distinct_proposals, equivocator_processes, fig2_processes,
    fig4_processes,
};
use sih::detectors::{Sigma, SigmaK, SigmaS};
use sih::model::{
    AdversaryPlan, Armor, AttackKind, AttackSpec, FailurePattern, MutationKind, MutationWindow,
    OpKind, ProcessId, ProcessSet, Time, Value,
};
use sih::registers::{abd_processes, check_linearizable, split_ack_processes};
use sih::runtime::sweep::Sweep;
use sih::runtime::{FairScheduler, Schedule, ScriptedScheduler, Simulation};
use sih_lab::repro::{record_first_violation, replay, shrink, verify_corpus_dir, ReplayMode};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The matrix's worst-case mutation pressure: `kind` on every directed
/// link, from time zero, never quiescing.
fn all_links(n: usize, kind: MutationKind, x: u64) -> AdversaryPlan {
    let mut b = AdversaryPlan::builder(n);
    for src in 0..n as u32 {
        for dst in 0..n as u32 {
            if src != dst {
                b = b.mutate(MutationWindow {
                    src: ProcessId(src),
                    dst: ProcessId(dst),
                    kind,
                    x,
                    stride: 1,
                    offset: 0,
                    from: Time::ZERO,
                    until: None,
                });
            }
        }
    }
    b.build()
}

/// One attacked fig2 run: equivocating `p0` plus timestamp tampering on
/// every link, at the given armor rung. Returns a verdict token and the
/// terminal fingerprint (`0` for panicked runs — the mutated validity
/// `expect` is violation-grade, not nondeterminism).
fn fig2_byz_run(seed: u64, armor: Armor) -> (String, u64) {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed);
    catch_unwind(AssertUnwindSafe(|| {
        let mut sim = Simulation::new(
            equivocator_processes(fig2_processes(&proposals), ProcessId(0), 99, armor),
            pattern.clone(),
        )
        .with_adversary(all_links(n, MutationKind::Perturb, 100), armor);
        sim.run(&mut FairScheduler::new(seed), &sigma, 4_000);
        let verdict = match check_k_agreement_safety(sim.trace(), &proposals, n - 1) {
            Ok(()) => "ok".to_string(),
            Err(v) => format!("violation:{}", v.property),
        };
        sim.take_adversary();
        (verdict, sim.fingerprint_ordered())
    }))
    .unwrap_or_else(|_| ("panic".to_string(), 0))
}

/// The attacked sweep — verdicts *and* terminal fingerprints — is a pure
/// function of the seed: fanning it over 1, 2 and 8 worker threads
/// changes nothing. This is the replay-determinism contract the corpus
/// stands on, extended to adversarial runs.
#[test]
fn byz_sweep_is_identical_across_1_2_8_threads() {
    let seeds: Vec<u64> = (0..24).collect();
    let sweep = |threads: usize| {
        Sweep::new(threads).run(seeds.clone(), || {
            move |idx: usize, seed: u64| fig2_byz_run(seed, Armor::level((idx % 4) as u8))
        })
    };
    let one = sweep(1);
    assert!(
        one.iter().any(|(v, _)| v != "ok"),
        "the attacked sweep never degraded — the adversary is not engaging"
    );
    for threads in [2, 8] {
        assert_eq!(one, sweep(threads), "attacked sweep diverged at threads={threads}");
    }
}

/// Every committed Byzantine witness strict-replays to its recorded
/// verdict, and the corpus report is thread-count invariant.
#[test]
fn byzantine_corpus_witnesses_replay_across_thread_counts() {
    let one = verify_corpus_dir(&corpus_dir(), 1).expect("reading tests/corpus");
    let byz: Vec<_> = one.iter().filter(|e| e.file.contains("-byz-")).collect();
    assert_eq!(byz.len(), 6, "expected the six Byzantine witnesses, found {}", byz.len());
    for e in &byz {
        assert!(e.ok, "stale Byzantine witness: {e}");
    }
    for threads in [2, 8] {
        let other = verify_corpus_dir(&corpus_dir(), threads).expect("threaded run");
        assert_eq!(one, other, "corpus report differs at threads={threads}");
    }
}

/// Version discipline over the whole committed corpus: adversary-free
/// schedules re-emit as `v1` (old readers keep working), Byzantine
/// schedules as `v2`, and one text round-trip is the identity for both.
#[test]
fn schedule_text_round_trips_and_v1_stays_v1() {
    let mut checked = 0;
    let mut dir: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("reading tests/corpus")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "schedule"))
        .collect();
    dir.sort();
    for path in dir {
        let text = std::fs::read_to_string(&path).expect("readable schedule");
        let s = Schedule::parse(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let emitted = s.to_text();
        let again = Schedule::parse(&emitted).expect("emitted text parses");
        assert_eq!(s, again, "{}: text round-trip not the identity", path.display());
        let byz = !s.adversary.is_honest() || s.attack.is_some() || s.armor != Armor::NONE;
        let want = if byz { "sih-schedule v2" } else { "sih-schedule v1" };
        assert!(emitted.starts_with(want), "{}: emitted header is not `{want}`", path.display());
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} corpus schedules checked");
}

/// The acceptance pipeline for two of the new Byzantine workloads, from
/// scratch: capture the planted violation, shrink it deterministically,
/// strict-replay the minimized schedule, and round-trip it through the
/// v2 text format.
#[test]
fn fresh_byzantine_witnesses_record_shrink_and_replay() {
    for (workload, verdict) in [
        ("fig2-byz-perturb", "violation:validity"),
        ("abd-byz-forge-ack", "violation:not-linearizable"),
    ] {
        let recorded = record_first_violation(workload, 1, 64)
            .expect("workload is registered")
            .unwrap_or_else(|| panic!("{workload}: no violation within 64 seeds"));
        assert_eq!(recorded.verdict, verdict, "{workload}");
        assert!(!recorded.adversary.is_honest() || recorded.attack.is_some(), "{workload}");

        let (small, report) = shrink(&recorded).expect("shrink runs");
        assert!(report.final_len <= report.original_len, "{workload}");
        assert_eq!(small.verdict, recorded.verdict, "{workload}: shrinking changed the verdict");

        let rep = replay(&small, ReplayMode::Strict).expect("replay runs");
        assert!(
            rep.matches,
            "{workload}: minimized schedule not strict-reproducible: {}",
            rep.verdict
        );

        let (again, _) = shrink(&recorded).expect("second shrink runs");
        assert_eq!(small, again, "{workload}: shrinking is not deterministic");

        let parsed = Schedule::parse(&small.to_text()).expect("v2 round-trip parses");
        assert_eq!(parsed, small, "{workload}");
    }
}

/// Differential armor suite, fig2: with every armor rung on, an
/// equivocating proposer *and* a tampering network leave no trace — the
/// verdict and the terminal ordered fingerprint equal the honest
/// baseline's under the identical schedule.
#[test]
fn full_armor_fig2_is_bit_identical_to_honest_baseline() {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    for seed in 0..8 {
        let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed);
        let mut base = Simulation::new(fig2_processes(&proposals), pattern.clone());
        base.run(&mut FairScheduler::new(seed), &sigma, 4_000);
        let base_check = check_k_agreement_safety(base.trace(), &proposals, n - 1).is_ok();

        let mut armored = Simulation::new(
            equivocator_processes(fig2_processes(&proposals), ProcessId(0), 99, Armor::MAX),
            pattern.clone(),
        )
        .with_adversary(all_links(n, MutationKind::Perturb, 100), Armor::MAX);
        let outcome =
            armored.run(&mut ScriptedScheduler::new(base.script().to_vec()), &sigma, u64::MAX);
        assert_eq!(outcome.mutated, 0, "seed {seed}: armor let a mutation through");
        assert!(outcome.armored > 0, "seed {seed}: the adversary never even tried");
        let armored_check = check_k_agreement_safety(armored.trace(), &proposals, n - 1).is_ok();

        armored.take_adversary();
        assert_eq!(base_check, armored_check, "seed {seed}: verdicts diverge");
        assert_eq!(
            base.fingerprint_ordered(),
            armored.fingerprint_ordered(),
            "seed {seed}: armored run is not bit-identical to the baseline"
        );
    }
}

/// Differential armor suite, fig4: the tampering network under full
/// armor is invisible to the `k`-set agreement runs.
#[test]
fn full_armor_fig4_is_bit_identical_to_honest_baseline() {
    let (n, k) = (4, 1);
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let active: ProcessSet = (0..2 * k as u32).map(ProcessId).collect();
    for seed in 0..8 {
        let det = SigmaK::new(active, &pattern, seed);
        let mut base = Simulation::new(fig4_processes(&proposals), pattern.clone());
        base.run(&mut FairScheduler::new(seed), &det, 4_000);

        let mut armored = Simulation::new(fig4_processes(&proposals), pattern.clone())
            .with_adversary(all_links(n, MutationKind::Perturb, 100), Armor::MAX);
        let outcome =
            armored.run(&mut ScriptedScheduler::new(base.script().to_vec()), &det, u64::MAX);
        assert_eq!(outcome.mutated, 0, "seed {seed}");

        armored.take_adversary();
        assert_eq!(base.fingerprint_ordered(), armored.fingerprint_ordered(), "seed {seed}");
        assert_eq!(
            check_k_agreement_safety(base.trace(), &proposals, n - k).is_ok(),
            check_k_agreement_safety(armored.trace(), &proposals, n - k).is_ok(),
            "seed {seed}"
        );
    }
}

/// Differential armor suite, ABD: a split-ack forging replica plus
/// forged quorum acks, all defeated, leave the register emulation —
/// operations, verdict, terminal state — exactly as the honest run.
#[test]
fn full_armor_abd_is_bit_identical_to_honest_baseline() {
    let n = 4;
    let pattern = FailurePattern::all_correct(n);
    let s: ProcessSet = [ProcessId(0), ProcessId(1)].into_iter().collect();
    let scripts = vec![
        vec![OpKind::Write(Value(1)), OpKind::Read],
        vec![OpKind::Read, OpKind::Write(Value(2)), OpKind::Read],
    ];
    for seed in 0..8 {
        let fd = SigmaS::new(s, &pattern, seed);
        let mut base = Simulation::new(abd_processes(s, n, scripts.clone()), pattern.clone());
        base.run(&mut FairScheduler::new(seed), &fd, 6_000);
        let base_check = check_linearizable(&base.trace().op_records(), None).is_ok();

        let mut armored = Simulation::new(
            split_ack_processes(abd_processes(s, n, scripts.clone()), ProcessId(3), 55, Armor::MAX),
            pattern.clone(),
        )
        .with_adversary(all_links(n, MutationKind::ForgeAck, 77), Armor::MAX);
        let outcome =
            armored.run(&mut ScriptedScheduler::new(base.script().to_vec()), &fd, u64::MAX);
        assert_eq!(outcome.mutated, 0, "seed {seed}");
        assert_eq!(outcome.forged, 0, "seed {seed}: a forgery slipped past full armor");
        let armored_check = check_linearizable(&armored.trace().op_records(), None).is_ok();

        armored.take_adversary();
        assert_eq!(base_check, armored_check, "seed {seed}");
        assert_eq!(base.fingerprint_ordered(), armored.fingerprint_ordered(), "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The network counter balance the stubborn layer must preserve:
    /// consumed-and-replaced envelopes are **moved** to `mutated`, never
    /// double-counted, so `sent = delivered + dropped + mutated +
    /// in_flight` holds at the end of every adversarial run — and armor
    /// at or above the tamper rung forces `mutated = 0`.
    #[test]
    fn counters_balance_under_every_armor_rung(seed in 0u64..500, rung in 0u8..4) {
        let armor = Armor::level(rung);
        let n = 3;
        let pattern = FailurePattern::all_correct(n);
        let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed);
        let proposals = distinct_proposals(n);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone())
                .with_adversary(all_links(n, MutationKind::Perturb, 100), armor);
            sim.run(&mut FairScheduler::new(seed), &sigma, 4_000)
        }));
        // A panicked run is the mutated validity `expect` firing — a
        // violation-grade outcome the matrix reports; no counters to
        // audit there.
        if let Ok(o) = outcome {
            prop_assert_eq!(
                o.sent,
                o.delivered + o.dropped + o.mutated + o.in_flight,
                "counter imbalance: {:?}", o
            );
            if armor.defeats(MutationKind::Perturb.class()) {
                prop_assert_eq!(o.mutated, 0);
                prop_assert!(o.armored > 0, "adversary never engaged: {:?}", o);
            } else {
                prop_assert!(o.mutated > 0, "all-links perturb mutated nothing: {:?}", o);
                prop_assert_eq!(o.armored, 0);
            }
        }
    }

    /// Schedule v2 text is a faithful codec for *arbitrary* adversary
    /// configurations: random mutation windows, scripted attacks and
    /// armor rungs all survive `to_text` → `parse` unchanged.
    #[test]
    fn arbitrary_adversary_plans_round_trip_through_v2_text(
        windows in proptest::collection::vec(
            ((0u32..4, 0u32..4, 0usize..5),
             (0u64..1000, 1u64..4, 0u64..3),
             (0u64..100, proptest::option::of(0u64..100))),
            0..4,
        ),
        attack in proptest::option::of((0usize..2, 0u64..1000)),
        rung in 0u8..4,
    ) {
        let base = std::fs::read_to_string(corpus_dir().join("abd-byz-forge-ack.schedule"))
            .expect("committed witness");
        let mut s = Schedule::parse(&base).expect("witness parses");
        let kinds = [
            MutationKind::Flip,
            MutationKind::Perturb,
            MutationKind::Replay,
            MutationKind::ForgeSender,
            MutationKind::ForgeAck,
        ];
        let mut b = AdversaryPlan::builder(s.n);
        for ((src, dst, kind), (x, stride, offset), (from, until)) in windows {
            if src == dst {
                continue;
            }
            b = b.mutate(MutationWindow {
                src: ProcessId(src),
                dst: ProcessId(dst),
                kind: kinds[kind],
                x,
                stride,
                offset: offset.min(stride - 1),
                from: Time(from),
                until: until.map(|u| Time(from + 1 + u)),
            });
        }
        s.adversary = b.build();
        s.attack = attack.map(|(k, x)| AttackSpec {
            kind: if k == 0 { AttackKind::Equivocate } else { AttackKind::SplitAck },
            x,
        });
        s.armor = Armor::level(rung);
        let parsed = Schedule::parse(&s.to_text()).expect("emitted text parses");
        prop_assert_eq!(parsed, s);
    }
}
