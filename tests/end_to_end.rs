//! Cross-crate integration: the full positive pipelines of the paper and
//! the claims/lab machinery, exercised through the public API only.

use sih::claims::{check_claim, Claim, ClaimConfig};
use sih::model::{FailurePattern, ProcessId, ProcessSet};
use sih::pipeline;
use sih::prelude::*;
use sih_lab::{run_experiment, LabConfig};

#[test]
fn theorem2_positive_direction_end_to_end() {
    // Σ_{p,q} → (Figure 3) → σ → (Figure 2) → set agreement, stacked in
    // one run per pattern.
    let (p, q) = (ProcessId(0), ProcessId(1));
    for pattern in [
        FailurePattern::all_correct(5),
        FailurePattern::crashed_from_start(5, ProcessSet::from_iter([2, 3, 4].map(ProcessId))),
        FailurePattern::builder(5).crash_at(ProcessId(1), Time(30)).build(),
    ] {
        for seed in 0..3 {
            let tr = pipeline::run_stack_fig3_fig2(&pattern, p, q, seed, 250_000);
            check_k_set_agreement(&tr, &pattern, &distinct_proposals(5), 4)
                .unwrap_or_else(|e| panic!("{pattern:?} seed {seed}: {e}"));
            check_sigma(tr.emulated_history(), &pattern, ProcessSet::from_iter([p, q]))
                .unwrap_or_else(|e| panic!("{pattern:?} seed {seed}: emulated σ: {e}"));
        }
    }
}

#[test]
fn theorem8_positive_direction_end_to_end() {
    let x = ProcessSet::from_iter([0, 1, 2, 3].map(ProcessId));
    for pattern in [
        FailurePattern::all_correct(6),
        FailurePattern::crashed_from_start(6, ProcessSet::from_iter([2, 3, 4, 5].map(ProcessId))),
    ] {
        for seed in 0..3 {
            let tr = pipeline::run_stack_fig5_fig4(&pattern, x, seed, 400_000);
            check_k_set_agreement(&tr, &pattern, &distinct_proposals(6), 4)
                .unwrap_or_else(|e| panic!("{pattern:?} seed {seed}: {e}"));
        }
    }
}

#[test]
fn figure1_all_claims_confirm() {
    let cfg = ClaimConfig { n: 4, k: 1, seeds: 1, max_steps: 150_000, ..ClaimConfig::default() };
    for claim in Claim::ALL {
        let outcome = check_claim(claim, &cfg);
        assert!(outcome.verdict.confirmed(), "{claim}: {:?}", outcome.verdict);
    }
}

#[test]
fn lab_experiments_smoke() {
    let cfg = LabConfig { n: 4, k: 1, seeds: 1, max_steps: 150_000, ..LabConfig::default() };
    for id in ["e1", "e3", "e7", "e10", "e11"] {
        let report = run_experiment(id, &cfg);
        assert!(report.ok, "{id}: {report}");
    }
}

#[test]
fn register_and_agreement_coexist_in_one_system() {
    // The two abstractions side by side on identical patterns: the
    // registry workload linearizes AND the agreement run decides — the
    // setting of the paper's comparison.
    let pattern = FailurePattern::builder(5).crash_at(ProcessId(4), Time(50)).build();
    let s = ProcessSet::from_iter([0, 1].map(ProcessId));
    let spec = WorkloadSpec { ops_per_process: 3, read_ratio: 0.4, seed: 9 };
    let (_, ops) = pipeline::run_register_workload(&pattern, s, spec.scripts(s), 9, 400_000);
    check_linearizable(&ops, None).unwrap();

    let tr = pipeline::run_fig2(&pattern, ProcessId(0), ProcessId(1), 9, 200_000);
    check_k_set_agreement(&tr, &pattern, &distinct_proposals(5), 4).unwrap();
}

#[test]
fn paxos_baseline_beats_the_weak_agreement_bound() {
    // Consensus decides ONE value where Figure 2 is allowed n−1: the
    // baseline really is stronger.
    let pattern = FailurePattern::all_correct(5);
    let tr = pipeline::run_paxos(&pattern, 3, 400_000);
    assert_eq!(tr.distinct_decisions().len(), 1);
    check_k_set_agreement(&tr, &pattern, &distinct_proposals(5), 1).unwrap();
}
