//! Table-driven tests of the **degraded** (graceful-degradation) checkers:
//! `check_k_set_agreement_degraded` and `check_linearizable_degraded`.
//!
//! The contract under test: *safety is never excused* — an agreement or
//! atomicity violation fails the check no matter how the run stopped —
//! while a *liveness* miss (termination, operation completeness) is
//! excused exactly when the stop reason legitimately starves quorums
//! (`Starved`, or `MaxSteps` with faults still unquiesced). Edge cases:
//! empty histories, everyone crashed from the start, and quiescence
//! landing exactly on the step horizon.

use sih::agreement::{check_k_set_agreement_degraded, distinct_proposals, fig4_processes};
use sih::detectors::{SigmaS, WeakSigmaK};
use sih::model::{
    FailurePattern, LinkFaultPlan, OpId, OpKind, OpRecord, ProcessId, ProcessSet, Time, Value,
};
use sih::registers::{abd_processes, check_linearizable_degraded, LinearizabilityViolation};
use sih::runtime::{FairScheduler, LivenessVerdict, Simulation, StopReason, Trace};

// ---------------------------------------------------------------------
// k-set agreement
// ---------------------------------------------------------------------

/// A process that decides a prescribed value on its first step (or halts
/// undecided on `None`).
#[derive(Clone, Debug)]
struct DecideMaybe(Option<Value>);

impl sih::runtime::Automaton for DecideMaybe {
    type Msg = ();
    fn step(&mut self, _input: sih::runtime::StepInput<()>, eff: &mut sih::runtime::Effects<()>) {
        if let Some(v) = self.0 {
            eff.decide(v);
        }
        eff.halt();
    }
}

/// Runs `DecideMaybe` automata to completion and returns the trace.
fn decisions_trace(pattern: &FailurePattern, decisions: &[Option<u64>]) -> Trace {
    let procs: Vec<DecideMaybe> = decisions.iter().map(|d| DecideMaybe(d.map(Value))).collect();
    let mut sim = Simulation::new(procs, pattern.clone());
    sim.run(&mut FairScheduler::new(0), &sih::model::NoDetector, 1_000);
    sim.into_trace()
}

/// What a degraded-check table row expects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    Live,
    SafeButNotLive,
    /// `Err` whose `property` field is this string.
    Violated(&'static str),
}

#[test]
fn k_set_agreement_degraded_table() {
    struct Case {
        name: &'static str,
        /// `None` decision = the process halts without deciding.
        decisions: &'static [Option<u64>],
        pattern: fn(usize) -> FailurePattern,
        k: usize,
        reason: StopReason,
        expect: Expect,
    }
    let all_correct = |n: usize| FailurePattern::all_correct(n);
    let p1_crashed = |n: usize| FailurePattern::builder(n).crash_from_start(ProcessId(1)).build();
    // Everyone crashed from the start: only `build_unchecked` accepts a
    // pattern with no correct majority left.
    let all_crashed = |n: usize| {
        let mut b = FailurePattern::builder(n);
        for p in (0..n as u32).map(ProcessId) {
            b = b.crash_from_start(p);
        }
        b.build_unchecked()
    };

    let cases = [
        Case {
            name: "empty trace, starved: termination miss excused",
            decisions: &[None, None],
            pattern: all_correct,
            k: 1,
            reason: StopReason::Starved,
            expect: Expect::SafeButNotLive,
        },
        Case {
            name: "empty trace, run claims completion: termination violated",
            decisions: &[None, None],
            pattern: all_correct,
            k: 1,
            reason: StopReason::AllCorrectHalted,
            expect: Expect::Violated("termination"),
        },
        Case {
            name: "empty trace, scheduler gave up: not an excuse",
            decisions: &[None, None],
            pattern: all_correct,
            k: 1,
            reason: StopReason::SchedulerExhausted,
            expect: Expect::Violated("termination"),
        },
        Case {
            name: "everyone crashed from the start: termination is vacuous",
            decisions: &[None, None],
            pattern: all_crashed,
            k: 1,
            reason: StopReason::Starved,
            expect: Expect::Live,
        },
        Case {
            name: "safety violation while starved: never excused",
            decisions: &[Some(0), Some(1)],
            pattern: all_correct,
            k: 1,
            reason: StopReason::Starved,
            expect: Expect::Violated("agreement"),
        },
        Case {
            name: "invented value while starved: never excused",
            decisions: &[Some(9), None],
            pattern: all_correct,
            k: 1,
            reason: StopReason::Starved,
            expect: Expect::Violated("validity"),
        },
        Case {
            name: "quiescence exactly at the horizon: MaxSteps with all decided is Live",
            decisions: &[Some(1), Some(1)],
            pattern: all_correct,
            k: 1,
            reason: StopReason::MaxSteps,
            expect: Expect::Live,
        },
        Case {
            name: "budget ran out mid-protocol: excused",
            decisions: &[Some(1), None],
            pattern: all_correct,
            k: 1,
            reason: StopReason::MaxSteps,
            expect: Expect::SafeButNotLive,
        },
        Case {
            name: "crashed process's missing decision never counts",
            decisions: &[Some(1), None],
            pattern: p1_crashed,
            k: 1,
            reason: StopReason::AllCorrectHalted,
            expect: Expect::Live,
        },
    ];

    for case in &cases {
        let n = case.decisions.len();
        let pattern = (case.pattern)(n);
        let trace = decisions_trace(&pattern, case.decisions);
        let proposals = distinct_proposals(n);
        let got = check_k_set_agreement_degraded(&trace, &pattern, &proposals, case.k, case.reason);
        match case.expect {
            Expect::Live => assert_eq!(got, Ok(LivenessVerdict::Live), "{}", case.name),
            Expect::SafeButNotLive => {
                assert_eq!(got, Ok(LivenessVerdict::SafeButNotLive), "{}", case.name)
            }
            Expect::Violated(property) => {
                let err = got.unwrap_err();
                assert_eq!(err.property, property, "{}", case.name);
            }
        }
    }
}

/// A **real** partitioned run: Fig. 4 under weak-σ_k with every link
/// black: both actives decide their own value. The resulting agreement
/// violation must fail the degraded check under *every* stop reason —
/// partitions excuse starvation, never safety.
#[test]
fn real_partition_safety_violation_is_never_excused() {
    let n = 2;
    let k = 1;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let weak = WeakSigmaK::new(active);
    let blackout = LinkFaultPlan::builder(n).blackout(Time::ZERO, None).build();

    let mut sim =
        Simulation::new(fig4_processes(&proposals), pattern.clone()).with_link_faults(blackout);
    sim.run(&mut FairScheduler::new(0), &weak, 4_000);
    let trace = sim.into_trace();
    assert!(trace.distinct_decisions().len() > n - k, "partitioned run must split decisions");

    for reason in [
        StopReason::AllCorrectHalted,
        StopReason::Starved,
        StopReason::MaxSteps,
        StopReason::SchedulerExhausted,
    ] {
        let err = check_k_set_agreement_degraded(&trace, &pattern, &proposals, n - k, reason)
            .expect_err("safety violations are unconditional");
        assert_eq!(err.property, "agreement", "under {reason:?}");
    }
}

// ---------------------------------------------------------------------
// linearizability
// ---------------------------------------------------------------------

fn op(
    id: u64,
    process: u32,
    kind: OpKind,
    invoked: u64,
    returned: Option<u64>,
    read_value: Option<Value>,
) -> OpRecord {
    OpRecord {
        id: OpId(id),
        process: ProcessId(process),
        kind,
        invoked: Time(invoked),
        returned: returned.map(Time),
        read_value,
    }
}

#[test]
fn linearizable_degraded_table() {
    struct Case {
        name: &'static str,
        ops: Vec<OpRecord>,
        pattern: FailurePattern,
        reason: StopReason,
        expect: Result<LivenessVerdict, fn(&LinearizabilityViolation) -> bool>,
    }
    let all_correct = FailurePattern::all_correct(2);
    let p1_crashed = FailurePattern::builder(2).crash_from_start(ProcessId(1)).build();
    let not_linearizable = |v: &LinearizabilityViolation| {
        matches!(v, LinearizabilityViolation::NotLinearizable { .. })
    };
    let incomplete =
        |v: &LinearizabilityViolation| matches!(v, LinearizabilityViolation::Incomplete { .. });
    let too_large = |v: &LinearizabilityViolation| {
        matches!(v, LinearizabilityViolation::HistoryTooLarge { .. })
    };

    let cases = [
        Case {
            name: "empty history is vacuously live, even starved",
            ops: vec![],
            pattern: all_correct.clone(),
            reason: StopReason::Starved,
            expect: Ok(LivenessVerdict::Live),
        },
        Case {
            name: "stale read after a completed write: atomicity never excused",
            ops: vec![
                op(0, 0, OpKind::Write(Value(7)), 0, Some(5), None),
                op(1, 1, OpKind::Read, 6, Some(9), None),
            ],
            pattern: all_correct.clone(),
            reason: StopReason::Starved,
            expect: Err(not_linearizable),
        },
        Case {
            name: "crashed client's pending op is always excused",
            ops: vec![
                op(0, 0, OpKind::Write(Value(7)), 0, Some(5), None),
                op(1, 1, OpKind::Write(Value(8)), 1, None, None),
            ],
            pattern: p1_crashed.clone(),
            reason: StopReason::AllCorrectHalted,
            expect: Ok(LivenessVerdict::Live),
        },
        Case {
            name: "correct client starved mid-op: safe but not live",
            ops: vec![op(0, 0, OpKind::Write(Value(7)), 0, None, None)],
            pattern: all_correct.clone(),
            reason: StopReason::Starved,
            expect: Ok(LivenessVerdict::SafeButNotLive),
        },
        Case {
            name: "correct client pending at the horizon: excused under MaxSteps",
            ops: vec![op(0, 0, OpKind::Write(Value(7)), 0, None, None)],
            pattern: all_correct.clone(),
            reason: StopReason::MaxSteps,
            expect: Ok(LivenessVerdict::SafeButNotLive),
        },
        Case {
            name: "correct client pending though the run claims completion",
            ops: vec![op(0, 0, OpKind::Write(Value(7)), 0, None, None)],
            pattern: all_correct.clone(),
            reason: StopReason::AllCorrectHalted,
            expect: Err(incomplete),
        },
        Case {
            name: "oversized history is a capacity error, not an excuse",
            ops: (0..129)
                .map(|i| op(i, 0, OpKind::Write(Value(i)), 2 * i, Some(2 * i + 1), None))
                .collect(),
            pattern: all_correct.clone(),
            reason: StopReason::Starved,
            expect: Err(too_large),
        },
    ];

    for case in &cases {
        let got = check_linearizable_degraded(&case.ops, None, &case.pattern, case.reason);
        match &case.expect {
            Ok(verdict) => assert_eq!(got, Ok(*verdict), "{}", case.name),
            Err(classify) => {
                let err = got.expect_err(case.name);
                assert!(classify(&err), "{}: unexpected violation {err:?}", case.name);
            }
        }
    }
}

/// A **real** blackout run: the ABD register under a sound `Σ_S` with
/// every link black from the start. No quorum ever assembles, the
/// clients' scripts stall, the run exhausts its budget — and the degraded
/// check excuses exactly that: safe but not live, never a violation.
#[test]
fn real_blackout_starvation_is_excused() {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let s: ProcessSet = (0..n as u32).map(ProcessId).collect();
    let det = SigmaS::new(s, &pattern, 0);
    let scripts = vec![vec![OpKind::Write(Value(7))], vec![OpKind::Read], vec![]];
    let blackout = LinkFaultPlan::builder(n).blackout(Time::ZERO, None).build();

    let mut sim =
        Simulation::new(abd_processes(s, n, scripts), pattern.clone()).with_link_faults(blackout);
    let outcome = sim.run(&mut FairScheduler::new(0), &det, 2_000);
    assert!(
        matches!(outcome.reason, StopReason::MaxSteps | StopReason::Starved),
        "a blacked-out register run cannot complete: {:?}",
        outcome.reason
    );
    let trace = sim.into_trace();
    let verdict = check_linearizable_degraded(&trace.op_records(), None, &pattern, outcome.reason);
    assert_eq!(verdict, Ok(LivenessVerdict::SafeButNotLive));
}
