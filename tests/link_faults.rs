//! Property tests for the link-fault machinery: the network's counter
//! invariant under seeded random fault plans, exactly-once delivery
//! through the stubborn layer, determinism of faulty runs, and the
//! thread-count independence of the `lab faults` artifact.

use proptest::prelude::*;
use sih::model::{FailurePattern, LinkFaultPlan, NoDetector, ProcessId, Time};
use sih::runtime::{Automaton, Effects, FairScheduler, Simulation, StepInput};

/// Sends one message to everyone for its first 30 steps.
#[derive(Clone, Debug, Default)]
struct Chatter {
    steps: u64,
}

impl Automaton for Chatter {
    type Msg = u8;
    fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
        self.steps += 1;
        if self.steps <= 30 {
            eff.send_all(input.n, 7);
        }
    }
}

/// Broadcasts once, then counts the payloads its inner layer receives.
#[derive(Clone, Debug, Default)]
struct BroadcastOnce {
    started: bool,
    received: u64,
}

impl Automaton for BroadcastOnce {
    type Msg = u8;
    fn step(&mut self, input: StepInput<u8>, eff: &mut Effects<u8>) {
        if !self.started {
            self.started = true;
            eff.send_all(input.n, 1);
        }
        if input.delivered.is_some() {
            self.received += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `sent == delivered + dropped + in_flight`, whatever faults a
    /// seeded random plan injects.
    #[test]
    fn network_counters_reconcile_under_random_plans(
        plan_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let n = 4;
        let plan = LinkFaultPlan::random_plan(n, plan_seed, Time(400));
        let pattern = FailurePattern::all_correct(n);
        let mut sim =
            Simulation::new(vec![Chatter::default(); n], pattern).with_link_faults(plan);
        let outcome = sim.run(&mut FairScheduler::new(sched_seed), &NoDetector, 3_000);
        prop_assert_eq!(
            outcome.sent,
            outcome.delivered + outcome.dropped + outcome.in_flight
        );
        prop_assert_eq!(outcome.sent, sim.network().sent_count());
        prop_assert_eq!(outcome.dropped, sim.network().dropped_count());
        prop_assert_eq!(outcome.duplicated, sim.network().duplicated_count());
    }

    /// Through the stubborn layer every logical send is delivered to the
    /// inner automaton exactly once — duplicates and retransmissions are
    /// invisible — no matter what a (bounded) random plan does first.
    #[test]
    fn stubborn_delivery_is_exactly_once_under_random_plans(plan_seed in 0u64..10_000) {
        let n = 3;
        let plan = LinkFaultPlan::random_plan(n, plan_seed, Time(300));
        let pattern = FailurePattern::all_correct(n);
        let procs =
            sih::runtime::stubborn_processes(vec![BroadcastOnce::default(); n]);
        let mut sim = Simulation::new(procs, pattern).with_link_faults(plan);
        let outcome = sim.run_until(
            &mut FairScheduler::new(plan_seed ^ 0x5bd1e995),
            &NoDetector,
            200_000,
            |s| (0..n).all(|i| s.process(ProcessId(i as u32)).inner().received == n as u64),
        );
        // Exactly once: n broadcasts of one message each, never more —
        // and all of them arrive once the plan's windows close.
        for i in 0..n {
            prop_assert_eq!(sim.process(ProcessId(i as u32)).inner().received, n as u64);
        }
        prop_assert_eq!(
            outcome.sent,
            outcome.delivered + outcome.dropped + outcome.in_flight
        );
    }

    /// Fault injection is a pure function of `(plan, seed)`: replaying
    /// the same seeds reproduces the schedule and every counter.
    #[test]
    fn faulty_runs_replay_bit_identically(plan_seed in 0u64..10_000) {
        let n = 4;
        let pattern = FailurePattern::all_correct(n);
        let run = || {
            let plan = LinkFaultPlan::random_plan(n, plan_seed, Time(400));
            let mut sim =
                Simulation::new(vec![Chatter::default(); n], pattern.clone())
                    .with_link_faults(plan);
            let outcome =
                sim.run(&mut FairScheduler::new(plan_seed), &NoDetector, 2_000);
            (sim.script().to_vec(), outcome.sent, outcome.delivered, outcome.dropped,
             outcome.duplicated)
        };
        prop_assert_eq!(run(), run());
    }
}

/// The `BENCH_faults.json` counters must not depend on `--threads`.
#[test]
fn faults_bench_artifact_is_thread_count_identical() {
    use sih_lab::{run_faults_bench, FaultsLabConfig};
    let cfg = FaultsLabConfig { n: 3, seeds: 2, max_steps: 400_000, threads: 1 };
    let serial = run_faults_bench(&cfg);
    let par = run_faults_bench(&FaultsLabConfig { threads: 2, ..cfg });
    assert!(serial.ok(), "{serial}");
    assert_eq!(serial.cells, par.cells);
    assert_eq!(serial.starved, par.starved);
}
