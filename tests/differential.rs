//! Differential testing: the randomized **sweep** engine and the bounded
//! **exhaustive explorer** must agree on violation verdicts for the same
//! workload, failure pattern and detector — sound detectors are clean in
//! both engines; weakened detectors are caught by both.
//!
//! This is the consistency contract behind the counterexample corpus: a
//! schedule recorded from one engine replays under the scripted scheduler
//! regardless of which engine found it, so the two engines must not
//! disagree about *whether* a violation exists in the first place.

use sih::agreement::{
    check_k_agreement_safety, distinct_proposals, fig2_processes, fig4_processes,
};
use sih::detectors::{Sigma, SigmaK, SigmaS, WeakSigma, WeakSigmaK};
use sih::model::{FailureDetector, FailurePattern, OpKind, ProcessId, ProcessSet, Time, Value};
use sih::registers::{abd_processes, check_linearizable};
use sih::runtime::sweep::Sweep;
use sih::runtime::{
    explore, explore_with, Automaton, ExploreConfig, ExploreResult, FairScheduler, Simulation,
};
use sih_lab::repro::{
    capture_from_script, record_first_violation, replay, ReplayMode, PANIC_VERDICT,
};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEEDS: u64 = 64;
const MAX_STEPS: u64 = 4_000;

/// Sweeps fig2 over scheduler seeds `0..SEEDS` with the given detector
/// builder, returning each seed's verdict token. Fanned over the
/// deterministic sweep engine, so the result is thread-count-invariant.
fn sweep_fig2<D: FailureDetector + Clone + Send>(
    pattern: &FailurePattern,
    det: impl Fn(u64) -> D + Sync,
    threads: usize,
) -> Vec<String> {
    let n = pattern.n();
    let proposals = distinct_proposals(n);
    let seeds: Vec<u64> = (0..SEEDS).collect();
    Sweep::new(threads).run(seeds, || {
        let pattern = pattern.clone();
        let proposals = proposals.clone();
        let det = &det;
        move |_idx: usize, seed: u64| {
            let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
            let fd = det(seed);
            sim.run(&mut FairScheduler::new(seed), &fd, MAX_STEPS);
            match check_k_agreement_safety(sim.trace(), &proposals, n - 1) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("violation:{}", v.property),
            }
        }
    })
}

/// Same sweep for fig4 with `k = 1` (active pair `{p0, p1}`).
fn sweep_fig4<D: FailureDetector + Clone + Send>(
    pattern: &FailurePattern,
    det: impl Fn(u64) -> D + Sync,
    threads: usize,
) -> Vec<String> {
    let n = pattern.n();
    let k = 1;
    let proposals = distinct_proposals(n);
    let seeds: Vec<u64> = (0..SEEDS).collect();
    Sweep::new(threads).run(seeds, || {
        let pattern = pattern.clone();
        let proposals = proposals.clone();
        let det = &det;
        move |_idx: usize, seed: u64| {
            let mut sim = Simulation::new(fig4_processes(&proposals), pattern.clone());
            let fd = det(seed);
            sim.run(&mut FairScheduler::new(seed), &fd, MAX_STEPS);
            match check_k_agreement_safety(sim.trace(), &proposals, n - k) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("violation:{}", v.property),
            }
        }
    })
}

#[test]
fn fig2_sound_sigma_both_engines_report_no_violation() {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);

    // Explorer: every schedule up to depth 9 is clean.
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "explorer found {:?}", result.violation);

    // Sweep: every sampled seed is clean too, at any thread count.
    let verdicts =
        sweep_fig2(&pattern, |seed| Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed), 1);
    assert!(verdicts.iter().all(|v| v == "ok"), "sweep found {verdicts:?}");
    for threads in [2, 8] {
        let again = sweep_fig2(
            &pattern,
            |seed| Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed),
            threads,
        );
        assert_eq!(verdicts, again, "sweep verdicts differ at threads={threads}");
    }
}

#[test]
fn fig2_sound_sigma_with_active_crash_both_engines_agree() {
    // Same fault plan on both sides: the active p1 crashes at t = 4.
    let n = 3;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), Time(4)).build();
    let proposals = distinct_proposals(n);

    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 1);
    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "explorer found {:?}", result.violation);

    let verdicts =
        sweep_fig2(&pattern, |seed| Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed), 0);
    assert!(verdicts.iter().all(|v| v == "ok"), "sweep found {verdicts:?}");
}

#[test]
fn fig2_weak_sigma_both_engines_catch_the_planted_weakness() {
    // Under weak-σ the planted failure is the Theorem 4 validity panic
    // (`max{Me, You}` hits ⊥). The explorer hits it while stepping, so
    // the exploration itself unwinds; the sweep side goes through the
    // repro harness, which converts the same panic into the stable
    // `panic` verdict token.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let weak = WeakSigma::new(ProcessId(0), ProcessId(1));

    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let explorer_caught = catch_unwind(AssertUnwindSafe(|| {
        let mut check = |s: &Simulation<_>| {
            check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
        };
        let result = explore(&sim, &weak, 6, usize::MAX, &mut check);
        result.violation.is_some()
    }))
    .map_err(|panic| {
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("validity"), "unexpected explorer panic: {msg}");
        true
    })
    .unwrap_or_else(|caught| caught);
    assert!(explorer_caught, "explorer missed the weak-σ violation up to depth 6");

    let recorded = record_first_violation("fig2-weak-sigma", 1, SEEDS)
        .expect("workload is registered")
        .expect("sweep side missed the weak-σ violation");
    assert_eq!(recorded.verdict, PANIC_VERDICT);
    let rep = replay(&recorded, ReplayMode::Strict).expect("replay runs");
    assert!(rep.matches, "sweep recording is not reproducible: {}", rep.verdict);
}

#[test]
fn fig4_sound_sigma_k_both_engines_report_no_violation() {
    let n = 3;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);

    let det = SigmaK::new(active, &pattern, 0);
    let sim = Simulation::new(fig4_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &det, 8, 3, &mut check);
    assert!(result.ok(), "explorer found {:?}", result.violation);

    let verdicts = sweep_fig4(&pattern, |seed| SigmaK::new(active, &pattern, seed), 0);
    assert!(verdicts.iter().all(|v| v == "ok"), "sweep found {verdicts:?}");
}

#[test]
fn fig4_weak_sigma_k_both_engines_find_the_agreement_violation() {
    // n = 4, k = 1: singleton trusted sets let both actives pass the
    // until-exit without intersecting, yielding > n−k distinct decisions.
    let n = 4;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let weak = WeakSigmaK::new(active);

    let sim = Simulation::new(fig4_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &weak, 8, usize::MAX, &mut check);
    let (script, msg) = result.violation.expect("explorer missed the weak-σ_k violation");
    assert!(msg.contains("agreement"), "unexpected violation: {msg}");

    // Sweep side: at least one sampled seed hits the same verdict, and
    // the verdict vector is identical across thread counts.
    let verdicts = sweep_fig4(&pattern, |_| weak, 1);
    assert!(
        verdicts.iter().any(|v| v == "violation:agreement"),
        "sweep missed the weak-σ_k violation: {verdicts:?}"
    );
    assert!(verdicts.iter().all(|v| v == "ok" || v == "violation:agreement"), "{verdicts:?}");
    for threads in [2, 8] {
        let again = sweep_fig4(&pattern, |_| weak, threads);
        assert_eq!(verdicts, again, "sweep verdicts differ at threads={threads}");
    }

    // Bridge: the explorer's violating script becomes a corpus-grade
    // schedule via `capture_from_script`, and strict-replays unchanged.
    let captured = capture_from_script(
        "fig4-weak-sigma-k",
        n,
        k,
        0,
        pattern.clone(),
        sih::model::LinkFaultPlan::reliable(n),
        script,
    )
    .expect("capture from the explorer script");
    assert_eq!(captured.verdict, "violation:agreement");
    let rep = replay(&captured, ReplayMode::Strict).expect("replay runs");
    assert!(rep.matches, "explorer capture is not reproducible: {}", rep.verdict);
    let roundtrip = sih::runtime::Schedule::parse(&captured.to_text()).expect("roundtrip");
    assert_eq!(roundtrip, captured);
}

#[test]
fn engines_agree_that_validity_needs_no_weakening_to_check() {
    // Negative control for the differential harness itself: a planted
    // impossible invariant must be reported by both engines with the
    // same kind of evidence (a schedule/seed reaching it).
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);

    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        if s.trace().decided().len() >= 2 {
            Err("planted: two processes decided".to_owned())
        } else {
            Ok(())
        }
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.violation.is_some(), "explorer missed the planted invariant");

    let seeds: Vec<u64> = (0..SEEDS).collect();
    let hits = Sweep::new(0).run(seeds, || {
        let pattern = pattern.clone();
        let proposals = proposals.clone();
        move |_idx: usize, seed: u64| {
            let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
            let fd = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed);
            sim.run(&mut FairScheduler::new(seed), &fd, MAX_STEPS);
            sim.trace().decided().len() >= 2
        }
    });
    assert!(hits.iter().any(|&h| h), "sweep missed the planted invariant");
}

// ---------------------------------------------------------------------------
// Reduction-engine differential: unreduced vs sleep sets vs source-DPOR.
//
// The three reduction strengths must agree not just on the verdict but on
// the *set of terminal states reached* — the Mazurkiewicz-trace soundness
// claim made concrete. Terminal states are collected by fingerprint from
// inside the checker (the explorer calls it on every non-deduped visit;
// a deduped revisit was fingerprint-identical to its first visit, so set
// semantics are unaffected), and commuting quiet steps reach the *same*
// state either side of the swap, so a sound reduction may skip revisits
// but never lose a member of the set.
// ---------------------------------------------------------------------------

/// Runs `explore_with` and also collects the fingerprint set of end
/// states: terminal (all correct halted, or nobody schedulable — the
/// explorer's own dead-end condition) or sitting exactly on the depth
/// bound (every step advances `now`, so the bound is visible to the
/// checker as `now == depth`). Both kinds are preserved by a sound
/// reduction: a pruned schedule has a commuted representative of the
/// same length reaching the identical state.
fn explore_terminal_digest<A, D>(
    sim: &Simulation<A>,
    fd: &D,
    cfg: &ExploreConfig,
    depth: usize,
    mut check: impl FnMut(&Simulation<A>) -> Result<(), String>,
) -> (ExploreResult, BTreeSet<u64>)
where
    A: Automaton + Clone + std::fmt::Debug,
    D: FailureDetector + ?Sized,
{
    let horizon = Time(sim.now().0 + depth as u64);
    let mut terminals = BTreeSet::new();
    let mut wrapped = |s: &Simulation<A>| {
        if s.all_correct_halted() || s.schedulable_set().is_empty() || s.now() == horizon {
            terminals.insert(s.fingerprint());
        }
        check(s)
    };
    let result = explore_with(sim, fd, cfg, &mut wrapped);
    (result, terminals)
}

/// The three engine configurations under test, strongest last.
fn engine_ladder(depth: usize) -> [(&'static str, ExploreConfig); 3] {
    [
        ("unreduced", ExploreConfig::new(depth).dedup(false).por(false)),
        ("sleep-set", ExploreConfig::new(depth)),
        ("source-dpor", ExploreConfig::new(depth).dpor(true)),
    ]
}

/// Asserts the full ladder agrees on verdict and terminal set for one
/// scenario, and that each stronger engine visits no more states.
fn assert_ladder_agrees<A, D>(
    scenario: &str,
    depth: usize,
    sim: &Simulation<A>,
    fd: &D,
    make_check: impl Fn() -> Box<dyn FnMut(&Simulation<A>) -> Result<(), String>>,
) where
    A: Automaton + Clone + std::fmt::Debug,
    D: FailureDetector + ?Sized,
{
    let mut base: Option<(bool, BTreeSet<u64>)> = None;
    let mut prev_states = u64::MAX;
    for (name, cfg) in engine_ladder(depth) {
        let (result, terminals) = explore_terminal_digest(sim, fd, &cfg, depth, make_check());
        assert!(!terminals.is_empty(), "{scenario}/{name}: no terminal states reached");
        match &base {
            None => {
                prev_states = result.states;
                base = Some((result.ok(), terminals));
            }
            Some((ok, reference)) => {
                assert_eq!(result.ok(), *ok, "{scenario}/{name}: verdict diverged");
                assert_eq!(
                    &terminals, reference,
                    "{scenario}/{name}: terminal fingerprint set diverged"
                );
                assert!(
                    result.states <= prev_states,
                    "{scenario}/{name}: {} states > weaker engine's {prev_states}",
                    result.states
                );
                prev_states = result.states;
            }
        }
    }
}

#[test]
fn reduction_ladder_agrees_on_fig2() {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig2_processes(&proposals), pattern);
    assert_ladder_agrees("fig2", 8, &sim, &sigma, || {
        let proposals = proposals.clone();
        Box::new(move |s: &Simulation<_>| {
            check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
        })
    });
}

#[test]
fn reduction_ladder_agrees_on_fig4() {
    let n = 3;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let det = SigmaK::new(active, &pattern, 0);
    let proposals = distinct_proposals(n);
    let sim = Simulation::new(fig4_processes(&proposals), pattern);
    assert_ladder_agrees("fig4", 7, &sim, &det, || {
        let proposals = proposals.clone();
        Box::new(move |s: &Simulation<_>| {
            check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
        })
    });
}

#[test]
fn reduction_ladder_agrees_on_abd() {
    // The ABD register (a different automaton family: quorum phases,
    // per-message state machines) under a sound Σ_S — linearizability as
    // the checked property.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let s: ProcessSet = (0..n as u32).map(ProcessId).collect();
    let det = SigmaS::new(s, &pattern, 0);
    let scripts = vec![vec![OpKind::Write(Value(7))], vec![OpKind::Read], vec![]];
    let sim = Simulation::new(abd_processes(s, n, scripts), pattern);
    assert_ladder_agrees("abd", 6, &sim, &det, || {
        Box::new(|s: &Simulation<_>| {
            check_linearizable(&s.trace().op_records(), None).map_err(|e| e.to_string())
        })
    });
}
