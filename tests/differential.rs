//! Differential testing: the randomized **sweep** engine and the bounded
//! **exhaustive explorer** must agree on violation verdicts for the same
//! workload, failure pattern and detector — sound detectors are clean in
//! both engines; weakened detectors are caught by both.
//!
//! This is the consistency contract behind the counterexample corpus: a
//! schedule recorded from one engine replays under the scripted scheduler
//! regardless of which engine found it, so the two engines must not
//! disagree about *whether* a violation exists in the first place.

use sih::agreement::{
    check_k_agreement_safety, distinct_proposals, fig2_processes, fig4_processes,
};
use sih::detectors::{Sigma, SigmaK, WeakSigma, WeakSigmaK};
use sih::model::{FailureDetector, FailurePattern, ProcessId, ProcessSet, Time};
use sih::runtime::sweep::Sweep;
use sih::runtime::{explore, FairScheduler, Simulation};
use sih_lab::repro::{
    capture_from_script, record_first_violation, replay, ReplayMode, PANIC_VERDICT,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEEDS: u64 = 64;
const MAX_STEPS: u64 = 4_000;

/// Sweeps fig2 over scheduler seeds `0..SEEDS` with the given detector
/// builder, returning each seed's verdict token. Fanned over the
/// deterministic sweep engine, so the result is thread-count-invariant.
fn sweep_fig2<D: FailureDetector + Clone + Send>(
    pattern: &FailurePattern,
    det: impl Fn(u64) -> D + Sync,
    threads: usize,
) -> Vec<String> {
    let n = pattern.n();
    let proposals = distinct_proposals(n);
    let seeds: Vec<u64> = (0..SEEDS).collect();
    Sweep::new(threads).run(seeds, || {
        let pattern = pattern.clone();
        let proposals = proposals.clone();
        let det = &det;
        move |_idx: usize, seed: u64| {
            let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
            let fd = det(seed);
            sim.run(&mut FairScheduler::new(seed), &fd, MAX_STEPS);
            match check_k_agreement_safety(sim.trace(), &proposals, n - 1) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("violation:{}", v.property),
            }
        }
    })
}

/// Same sweep for fig4 with `k = 1` (active pair `{p0, p1}`).
fn sweep_fig4<D: FailureDetector + Clone + Send>(
    pattern: &FailurePattern,
    det: impl Fn(u64) -> D + Sync,
    threads: usize,
) -> Vec<String> {
    let n = pattern.n();
    let k = 1;
    let proposals = distinct_proposals(n);
    let seeds: Vec<u64> = (0..SEEDS).collect();
    Sweep::new(threads).run(seeds, || {
        let pattern = pattern.clone();
        let proposals = proposals.clone();
        let det = &det;
        move |_idx: usize, seed: u64| {
            let mut sim = Simulation::new(fig4_processes(&proposals), pattern.clone());
            let fd = det(seed);
            sim.run(&mut FairScheduler::new(seed), &fd, MAX_STEPS);
            match check_k_agreement_safety(sim.trace(), &proposals, n - k) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("violation:{}", v.property),
            }
        }
    })
}

#[test]
fn fig2_sound_sigma_both_engines_report_no_violation() {
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);

    // Explorer: every schedule up to depth 9 is clean.
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);
    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "explorer found {:?}", result.violation);

    // Sweep: every sampled seed is clean too, at any thread count.
    let verdicts =
        sweep_fig2(&pattern, |seed| Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed), 1);
    assert!(verdicts.iter().all(|v| v == "ok"), "sweep found {verdicts:?}");
    for threads in [2, 8] {
        let again = sweep_fig2(
            &pattern,
            |seed| Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed),
            threads,
        );
        assert_eq!(verdicts, again, "sweep verdicts differ at threads={threads}");
    }
}

#[test]
fn fig2_sound_sigma_with_active_crash_both_engines_agree() {
    // Same fault plan on both sides: the active p1 crashes at t = 4.
    let n = 3;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), Time(4)).build();
    let proposals = distinct_proposals(n);

    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 1);
    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.ok(), "explorer found {:?}", result.violation);

    let verdicts =
        sweep_fig2(&pattern, |seed| Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed), 0);
    assert!(verdicts.iter().all(|v| v == "ok"), "sweep found {verdicts:?}");
}

#[test]
fn fig2_weak_sigma_both_engines_catch_the_planted_weakness() {
    // Under weak-σ the planted failure is the Theorem 4 validity panic
    // (`max{Me, You}` hits ⊥). The explorer hits it while stepping, so
    // the exploration itself unwinds; the sweep side goes through the
    // repro harness, which converts the same panic into the stable
    // `panic` verdict token.
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let weak = WeakSigma::new(ProcessId(0), ProcessId(1));

    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let explorer_caught = catch_unwind(AssertUnwindSafe(|| {
        let mut check = |s: &Simulation<_>| {
            check_k_agreement_safety(s.trace(), &proposals, n - 1).map_err(|e| e.to_string())
        };
        let result = explore(&sim, &weak, 6, usize::MAX, &mut check);
        result.violation.is_some()
    }))
    .map_err(|panic| {
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("validity"), "unexpected explorer panic: {msg}");
        true
    })
    .unwrap_or_else(|caught| caught);
    assert!(explorer_caught, "explorer missed the weak-σ violation up to depth 6");

    let recorded = record_first_violation("fig2-weak-sigma", 1, SEEDS)
        .expect("workload is registered")
        .expect("sweep side missed the weak-σ violation");
    assert_eq!(recorded.verdict, PANIC_VERDICT);
    let rep = replay(&recorded, ReplayMode::Strict).expect("replay runs");
    assert!(rep.matches, "sweep recording is not reproducible: {}", rep.verdict);
}

#[test]
fn fig4_sound_sigma_k_both_engines_report_no_violation() {
    let n = 3;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);

    let det = SigmaK::new(active, &pattern, 0);
    let sim = Simulation::new(fig4_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &det, 8, 3, &mut check);
    assert!(result.ok(), "explorer found {:?}", result.violation);

    let verdicts = sweep_fig4(&pattern, |seed| SigmaK::new(active, &pattern, seed), 0);
    assert!(verdicts.iter().all(|v| v == "ok"), "sweep found {verdicts:?}");
}

#[test]
fn fig4_weak_sigma_k_both_engines_find_the_agreement_violation() {
    // n = 4, k = 1: singleton trusted sets let both actives pass the
    // until-exit without intersecting, yielding > n−k distinct decisions.
    let n = 4;
    let k = 1;
    let active: ProcessSet = (0..2u32).map(ProcessId).collect();
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let weak = WeakSigmaK::new(active);

    let sim = Simulation::new(fig4_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        check_k_agreement_safety(s.trace(), &proposals, n - k).map_err(|e| e.to_string())
    };
    let result = explore(&sim, &weak, 8, usize::MAX, &mut check);
    let (script, msg) = result.violation.expect("explorer missed the weak-σ_k violation");
    assert!(msg.contains("agreement"), "unexpected violation: {msg}");

    // Sweep side: at least one sampled seed hits the same verdict, and
    // the verdict vector is identical across thread counts.
    let verdicts = sweep_fig4(&pattern, |_| weak, 1);
    assert!(
        verdicts.iter().any(|v| v == "violation:agreement"),
        "sweep missed the weak-σ_k violation: {verdicts:?}"
    );
    assert!(verdicts.iter().all(|v| v == "ok" || v == "violation:agreement"), "{verdicts:?}");
    for threads in [2, 8] {
        let again = sweep_fig4(&pattern, |_| weak, threads);
        assert_eq!(verdicts, again, "sweep verdicts differ at threads={threads}");
    }

    // Bridge: the explorer's violating script becomes a corpus-grade
    // schedule via `capture_from_script`, and strict-replays unchanged.
    let captured = capture_from_script(
        "fig4-weak-sigma-k",
        n,
        k,
        0,
        pattern.clone(),
        sih::model::LinkFaultPlan::reliable(n),
        script,
    )
    .expect("capture from the explorer script");
    assert_eq!(captured.verdict, "violation:agreement");
    let rep = replay(&captured, ReplayMode::Strict).expect("replay runs");
    assert!(rep.matches, "explorer capture is not reproducible: {}", rep.verdict);
    let roundtrip = sih::runtime::Schedule::parse(&captured.to_text()).expect("roundtrip");
    assert_eq!(roundtrip, captured);
}

#[test]
fn engines_agree_that_validity_needs_no_weakening_to_check() {
    // Negative control for the differential harness itself: a planted
    // impossible invariant must be reported by both engines with the
    // same kind of evidence (a schedule/seed reaching it).
    let n = 3;
    let pattern = FailurePattern::all_correct(n);
    let proposals = distinct_proposals(n);
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 0);

    let sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let mut check = |s: &Simulation<_>| {
        if s.trace().decided().len() >= 2 {
            Err("planted: two processes decided".to_owned())
        } else {
            Ok(())
        }
    };
    let result = explore(&sim, &sigma, 9, usize::MAX, &mut check);
    assert!(result.violation.is_some(), "explorer missed the planted invariant");

    let seeds: Vec<u64> = (0..SEEDS).collect();
    let hits = Sweep::new(0).run(seeds, || {
        let pattern = pattern.clone();
        let proposals = proposals.clone();
        move |_idx: usize, seed: u64| {
            let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
            let fd = Sigma::new(ProcessId(0), ProcessId(1), &pattern, seed);
            sim.run(&mut FairScheduler::new(seed), &fd, MAX_STEPS);
            sim.trace().decided().len() >= 2
        }
    });
    assert!(hits.iter().any(|&h| h), "sweep missed the planted invariant");
}
