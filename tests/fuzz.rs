//! Tier-1 contracts of the coverage-guided schedule fuzzer.
//!
//! Three properties pin the fuzzer to the rest of the harness:
//!
//! 1. **Grammar closure** — every mutation operator applied to every
//!    committed corpus schedule yields a `Schedule` that parses, round-
//!    trips through `to_text`, and preserves the version invariant (a
//!    v1 schedule stays adversary-free unless an adversary operator
//!    explicitly promotes it — never an invalid hybrid).
//! 2. **Thread-count determinism** — a fixed seed and schedule budget
//!    produce bitwise-identical corpora, coverage counts and
//!    `BENCH_fuzz.json` stats at 1, 2 and 8 threads.
//! 3. **Differential replay** — for fuzzer-kept entries on the fig2,
//!    fig4 and ABD weak twins, the strict replay verdict, executed
//!    script and per-step fingerprint stream agree between the
//!    workload-registry path (fanned over the Sweep engine) and a
//!    direct in-test `ScriptedScheduler` run over independently
//!    constructed simulations.

use sih::agreement::{
    check_k_agreement_safety, distinct_proposals, fig2_processes, fig4_processes,
};
use sih::detectors::{WeakSigma, WeakSigmaK, WeakSigmaS};
use sih::model::{FailureDetector, ProcessId, ProcessSet};
use sih::registers::{abd_processes, check_linearizable, LinearizabilityViolation};
use sih::runtime::fuzz::{crossover, mutate, FuzzRng, MutOp, MutatorConfig};
use sih::runtime::sweep::Sweep;
use sih::runtime::{Automaton, Choice, Schedule, ScriptedScheduler, Simulation};
use sih_lab::repro::{replay_with_fingerprints, FingerprintReplay, ReplayMode, BYZ_WORKLOADS};
use sih_lab::{run_fuzz_bench, FuzzBenchReport, FuzzLabConfig};
use std::path::PathBuf;

fn corpus_schedules() -> Vec<(String, Schedule)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("reading tests/corpus")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "schedule"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("reading schedule");
            let s = Schedule::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, s)
        })
        .collect()
}

// ---- satellite 1: grammar closure of every operator ---------------------

#[test]
fn every_operator_on_every_corpus_schedule_roundtrips_and_keeps_the_version_invariant() {
    let corpus = corpus_schedules();
    assert!(!corpus.is_empty(), "tests/corpus is empty");
    for (file, s) in &corpus {
        let allow = BYZ_WORKLOADS.contains(&s.checker.as_str());
        let cfg = MutatorConfig::for_schedule(s, allow);
        for op in MutOp::ALL {
            for seed in 0..8u64 {
                let mut rng = FuzzRng::new(seed);
                let Some(m) = mutate(s, op, &cfg, &mut rng) else { continue };
                let text = m.to_text();
                let back = Schedule::parse(&text)
                    .unwrap_or_else(|e| panic!("{file} × {}: {e}\n{text}", op.name()));
                assert_eq!(back, m, "{file} × {}: round-trip", op.name());
                // The version invariant: only an explicit adversary
                // operator may promote a v1 schedule to the v2 grammar,
                // and on a workload that honors no adversary fields the
                // gate keeps every mutant adversary-free.
                if s.adversary_free() && !op.is_adversary() {
                    assert!(m.adversary_free(), "{file} × {}: implicit v2 promotion", op.name());
                }
                if !allow {
                    assert!(m.adversary_free(), "{file} × {}: gate bypassed", op.name());
                }
            }
        }
    }
    // Crossover is closed over the grammar too, for every same-shape
    // parent pair in the corpus.
    for (fa, a) in &corpus {
        for (fb, b) in &corpus {
            if a.checker != b.checker || a.n != b.n || a.k != b.k {
                continue;
            }
            let allow = BYZ_WORKLOADS.contains(&a.checker.as_str());
            let cfg = MutatorConfig::for_schedule(a, allow);
            for seed in 0..4u64 {
                let mut rng = FuzzRng::new(seed);
                let Some(c) = crossover(a, b, &cfg, &mut rng) else { continue };
                let back =
                    Schedule::parse(&c.to_text()).unwrap_or_else(|e| panic!("{fa} × {fb}: {e}"));
                assert_eq!(back, c, "{fa} × {fb}: crossover round-trip");
            }
        }
    }
}

// ---- satellite 2: thread-count determinism ------------------------------

fn fixed_cfg(threads: usize) -> FuzzLabConfig {
    FuzzLabConfig { seed: 11, budget_schedules: 128, budget_ms: 0, batch: 32, threads }
}

/// The `BENCH_fuzz.json` text with every wall-clock-dependent field
/// (and the thread/worker configuration echo) dropped.
fn comparable_json(report: &FuzzBenchReport) -> String {
    report
        .to_json()
        .to_string_pretty()
        .lines()
        .filter(|l| {
            ![
                "\"wall_ms\"",
                "\"schedules_per_sec\"",
                "\"distinct_fps_per_sec\"",
                "\"workers\"",
                "\"threads\"",
            ]
            .iter()
            .any(|k| l.contains(k))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fuzz_run_is_bitwise_identical_across_thread_counts() {
    let runs: Vec<FuzzBenchReport> =
        [1usize, 2, 8].into_iter().map(|t| run_fuzz_bench(&fixed_cfg(t), &[])).collect();
    let base = &runs[0];
    assert!(base.ok(), "{base}");
    for r in &runs[1..] {
        assert_eq!(base.seeds_loaded, r.seeds_loaded);
        assert_eq!(base.executed, r.executed);
        assert_eq!(base.batches, r.batches);
        assert_eq!(base.distinct_fingerprints, r.distinct_fingerprints);
        assert_eq!(base.violations, r.violations);
        assert_eq!(base.corpus, r.corpus, "kept corpus differs across thread counts");
        assert_eq!(base.corpus_digest, r.corpus_digest);
        assert_eq!(
            base.witnesses.iter().map(|w| w.schedule.to_text()).collect::<Vec<_>>(),
            r.witnesses.iter().map(|w| w.schedule.to_text()).collect::<Vec<_>>(),
            "witnesses differ across thread counts"
        );
        assert_eq!(comparable_json(base), comparable_json(r));
    }
}

// ---- satellite 3: differential strict replay ----------------------------

// Quiet panic capture (the corpus contains `panic`-verdict schedules by
// design): the replacement hook is installed once and stays silent only
// on threads that are inside `quiet`, so genuine test failures keep
// their messages.
thread_local! {
    static SILENCED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}
static INSTALL_HOOK: std::sync::Once = std::sync::Once::new();

fn quiet<T>(f: impl FnOnce() -> T) -> Result<T, ()> {
    INSTALL_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCED.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SILENCED.with(|s| s.set(true));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    SILENCED.with(|s| s.set(false));
    r.map_err(|_| ())
}

/// Drives `sim` through the script with a genuine strict
/// [`ScriptedScheduler`], one engine-checked step at a time, collecting
/// the fingerprint after each completed step. Returns whether the run
/// panicked (illegal scripted choice or automaton invariant).
fn drive_scripted<A: Automaton + std::fmt::Debug>(
    sim: &mut Simulation<A>,
    fd: &(impl FailureDetector + ?Sized),
    choices: &[Choice],
    fps: &mut Vec<u64>,
) -> bool {
    let mut sched = ScriptedScheduler::new(choices.iter().copied()).strict();
    quiet(std::panic::AssertUnwindSafe(|| loop {
        let before = sim.now();
        sim.run(&mut sched, fd, 1);
        if sim.now() == before {
            break;
        }
        fps.push(sim.fingerprint());
    }))
    .is_err()
}

/// The direct path: reconstructs the weak-twin workload from first
/// principles (no `sih_lab::repro` involvement past the schedule fields)
/// and strict-replays it.
fn direct_replay(s: &Schedule) -> FingerprintReplay {
    let n = s.n;
    let mut fps = Vec::new();
    let (panicked, executed, verdict) = match s.checker.as_str() {
        "fig2-weak-sigma" => {
            let mut sim =
                Simulation::new(fig2_processes(&distinct_proposals(n)), s.pattern.clone());
            if !s.faults.is_reliable() {
                sim.set_link_faults(s.faults.clone());
            }
            let fd = WeakSigma::new(ProcessId(0), ProcessId(1));
            let p = drive_scripted(&mut sim, &fd, &s.choices, &mut fps);
            let v = match check_k_agreement_safety(sim.trace(), &distinct_proposals(n), n - 1) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("violation:{}", v.property),
            };
            (p, sim.script().to_vec(), v)
        }
        "fig4-weak-sigma-k" => {
            let active: ProcessSet = (0..(2 * s.k) as u32).map(ProcessId).collect();
            let mut sim =
                Simulation::new(fig4_processes(&distinct_proposals(n)), s.pattern.clone());
            if !s.faults.is_reliable() {
                sim.set_link_faults(s.faults.clone());
            }
            let fd = WeakSigmaK::new(active);
            let p = drive_scripted(&mut sim, &fd, &s.choices, &mut fps);
            let v = match check_k_agreement_safety(sim.trace(), &distinct_proposals(n), n - s.k) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("violation:{}", v.property),
            };
            (p, sim.script().to_vec(), v)
        }
        "abd-weak-quorum" => {
            let set: ProcessSet = [ProcessId(0), ProcessId(1)].into_iter().collect();
            let scripts = vec![
                vec![sih::model::OpKind::Write(sih::model::Value(7))],
                vec![sih::model::OpKind::Read; 6],
            ];
            let mut sim = Simulation::new(abd_processes(set, n, scripts), s.pattern.clone());
            if !s.faults.is_reliable() {
                sim.set_link_faults(s.faults.clone());
            }
            let fd = WeakSigmaS::new(set);
            let p = drive_scripted(&mut sim, &fd, &s.choices, &mut fps);
            let v = match check_linearizable(&sim.trace().op_records(), None) {
                Ok(()) => "ok".to_string(),
                Err(LinearizabilityViolation::NotLinearizable { .. }) => {
                    "violation:not-linearizable".to_string()
                }
                Err(LinearizabilityViolation::HistoryTooLarge { .. }) => {
                    "violation:history-too-large".to_string()
                }
                Err(LinearizabilityViolation::Incomplete { .. }) => {
                    "violation:incomplete".to_string()
                }
            };
            (p, sim.script().to_vec(), v)
        }
        other => panic!("differential test has no direct model for {other}"),
    };
    FingerprintReplay {
        verdict: if panicked { "panic".to_string() } else { verdict },
        executed,
        fingerprints: fps,
    }
}

#[test]
fn sweep_path_and_direct_scripted_run_agree_on_fuzzer_kept_entries() {
    const PER_WORKLOAD: usize = 12;
    let report = run_fuzz_bench(&fixed_cfg(1), &[]);
    let twins = ["fig2-weak-sigma", "fig4-weak-sigma-k", "abd-weak-quorum"];
    let mut picked: Vec<Schedule> = Vec::new();
    for t in twins {
        picked.extend(report.corpus.iter().filter(|s| s.checker == t).take(PER_WORKLOAD).cloned());
    }
    // The committed corpus entries for the same twins ride along.
    picked.extend(
        corpus_schedules()
            .into_iter()
            .map(|(_, s)| s)
            .filter(|s| twins.contains(&s.checker.as_str())),
    );
    assert!(!picked.is_empty(), "no fuzzer-kept entries on the weak twins");

    // Registry path, fanned over the Sweep engine.
    let via_sweep: Vec<FingerprintReplay> = Sweep::new(2).run(picked.clone(), || {
        |_idx, s: Schedule| {
            replay_with_fingerprints(&s, ReplayMode::Strict).expect("registered workload")
        }
    });
    for (s, sweep_rep) in picked.iter().zip(&via_sweep) {
        let direct = direct_replay(s);
        assert_eq!(
            direct.verdict, sweep_rep.verdict,
            "{}: verdict diverges between Sweep and direct ScriptedScheduler run",
            s.checker
        );
        assert_eq!(direct.executed, sweep_rep.executed, "{}: executed script diverges", s.checker);
        assert_eq!(
            direct.fingerprints, sweep_rep.fingerprints,
            "{}: per-step fingerprint stream diverges",
            s.checker
        );
    }
}
