//! Using the simulator as a library: write your own failure detector and
//! your own distributed algorithm, run them, and inspect the trace.
//!
//! The example implements a toy "first responder" leader election: every
//! process announces itself; everyone elects the smallest announced id,
//! restricted to processes the (custom) detector still trusts.
//!
//! ```text
//! cargo run --example custom_algorithm
//! ```

use sih::prelude::*;

/// A custom oracle: trusts exactly the alive processes (a "perfect"
/// detector — far stronger than anything the paper needs, which is the
/// point: you can explore the whole spectrum).
#[derive(Clone, Debug)]
struct PerfectDetector {
    pattern: FailurePattern,
}

impl FailureDetector for PerfectDetector {
    fn output(&self, _p: ProcessId, t: Time) -> FdOutput {
        FdOutput::Trust(self.pattern.alive_at(t))
    }
    fn stabilization_time(&self) -> Time {
        self.pattern.last_crash_time().next()
    }
    fn name(&self) -> String {
        "P (perfect)".to_owned()
    }
}

/// The toy algorithm: announce once; elect min(announced ∩ trusted).
#[derive(Clone, Debug, Default)]
struct FirstResponder {
    announced: ProcessSet,
    sent: bool,
    elected: Option<ProcessId>,
}

impl Automaton for FirstResponder {
    type Msg = ProcessId;

    fn step(&mut self, input: StepInput<ProcessId>, eff: &mut Effects<ProcessId>) {
        if !self.sent {
            self.sent = true;
            eff.send_all(input.n, input.me);
        }
        if let Some(env) = &input.delivered {
            self.announced.insert(env.payload);
        }
        if let Some(trusted) = input.fd.trust() {
            if let Some(leader) = self.announced.intersection(trusted).min() {
                if self.elected != Some(leader) {
                    self.elected = Some(leader);
                    // Publish the election through the emulated-output
                    // channel so it lands in the trace.
                    eff.set_output(FdOutput::Leader(leader));
                }
            }
        }
    }
}

fn main() {
    let n = 5;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(0), Time(60)).build();
    let detector = PerfectDetector { pattern: pattern.clone() };

    let mut sim = Simulation::new(vec![FirstResponder::default(); n], pattern.clone());
    let outcome = sim.run(&mut FairScheduler::new(3), &detector, 5_000);
    println!("ran {} steps with {}", outcome.steps, detector.name());

    for i in 0..n as u32 {
        let p = ProcessId(i);
        let final_leader = sim.trace().emulated_history().timeline(p).final_output();
        println!("  {p}: elected {final_leader}");
        if pattern.is_correct(p) {
            // p0 crashed at t=60; every correct process must eventually
            // elect the smallest survivor, p1.
            assert_eq!(final_leader, FdOutput::Leader(ProcessId(1)));
        }
    }
    println!("all correct processes converged on the smallest survivor ✓");
    println!(
        "trace: {} steps, {} messages",
        sim.trace().total_steps(),
        sim.trace().messages_sent()
    );
}
