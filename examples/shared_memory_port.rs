//! Theorem 12's setting, live: a shared-memory algorithm runs unchanged
//! (a) over physical registers and (b) over ABD-emulated registers in
//! the paper's message-passing model with `Σ`.
//!
//! The program is the classic `f`-resilient collect-min, which solves
//! `(f+1)`-set agreement — the positive side of the boundary the paper's
//! Theorem 12 reduction leans on.
//!
//! ```text
//! cargo run --example shared_memory_port
//! ```

use sih::detectors::SigmaS;
use sih::model::{FailurePattern, ProcessId, ProcessSet, Time, Value};
use sih::runtime::{FairScheduler, Simulation};
use sih::sharedmem::{bridged_processes, CollectMin, LocalSharedSim};

fn main() {
    let n = 5;
    let f = 1;
    let proposals: Vec<Value> = (0..n as u64).map(Value).collect();

    // ── world 1: registers as physical devices ────────────────────────
    println!("── shared memory (physical registers) ──");
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(4), Time(10)).build();
    let mut local = LocalSharedSim::new(CollectMin::processes(&proposals, f), n, pattern.clone());
    assert!(local.run_fair(7, 200_000), "all correct processes decide");
    println!(
        "collect-min (f = {f}): {} distinct decisions (bound {}), {} steps",
        local.distinct_decisions().len(),
        f + 1,
        local.steps()
    );

    // ── world 2: registers emulated from Σ in message passing ─────────
    println!("\n── message passing (ABD-emulated registers, Σ quorums) ──");
    let det = SigmaS::new(ProcessSet::full(n), &pattern, 7);
    let procs = bridged_processes(CollectMin::processes(&proposals, f), n);
    let mut sim = Simulation::new(procs, pattern.clone());
    sim.run_until(&mut FairScheduler::new(7), &det, 1_000_000, |s| {
        s.pattern().correct().iter().all(|p| s.trace().decision_of(p).is_some())
    });
    let distinct = sim.trace().distinct_decisions();
    assert!(
        pattern.correct().iter().all(|p| sim.trace().decision_of(p).is_some()),
        "all correct processes decide over the emulation too"
    );
    println!(
        "same program, ported: {} distinct decisions (bound {}), {} steps, {} messages",
        distinct.len(),
        f + 1,
        sim.trace().total_steps(),
        sim.trace().messages_sent()
    );
    println!(
        "\nthe 'register' the program used was {} messages of quorum traffic — \
         sharing is an emulation, and the information it needs (Σ) is the\n\
         paper's whole subject ∎",
        sim.trace().messages_sent()
    );
}
