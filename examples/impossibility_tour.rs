//! A tour of the paper's impossibility proofs, each run for real:
//!
//! * **Lemma 7** — no `Σ_{p,q}` from `σ` (two-run indistinguishability);
//! * **Lemma 11** — no `Σ_X2k` from `σ_2k`, including the `n = 2k` case;
//! * **Lemma 15** — no set agreement from `anti-Ω` in message passing
//!   (the chain of solo runs);
//! * **Theorem 13** — the `B`-from-`A` simulation that reduces register
//!   power to the classic `k`-set agreement impossibility;
//! * **Tightness** — schedules forcing Figures 2/4 to their full
//!   decision budgets.
//!
//! ```text
//! cargo run --example impossibility_tour
//! ```

use sih::model::{ProcessId, ProcessSet, Value};
use sih::reductions::{
    fig2_tightness, fig4_tightness, lemma11_defeat, lemma15_defeat, lemma7_defeat, theorem13_demo,
    AntiOmegaAgreementCandidate, MirrorPairCandidate, MirrorXCandidate,
};

fn main() {
    let n = 6;

    println!("── Lemma 7: Σ_{{p,q}} ⋠ σ ──");
    let (p, q, a) = (ProcessId(0), ProcessId(1), ProcessId(2));
    let defeat = lemma7_defeat(
        &|| (0..n).map(|_| MirrorPairCandidate::new(p, q)).collect::<Vec<_>>(),
        n,
        p,
        q,
        a,
        1,
        40_000,
    );
    println!("  mirror candidate: {defeat}\n");

    println!("── Lemma 11: Σ_X2k ⋠ σ_2k ──");
    let x: ProcessSet = (0..4u32).map(ProcessId).collect();
    let defeat = lemma11_defeat(
        &|| (0..n).map(|_| MirrorXCandidate::new(x)).collect::<Vec<_>>(),
        n,
        x,
        2,
        40_000,
    );
    println!("  outsider case (n=6, |X|=4): {defeat}");
    let full = ProcessSet::full(4);
    let defeat = lemma11_defeat(
        &|| (0..4).map(|_| MirrorXCandidate::new(full)).collect::<Vec<_>>(),
        4,
        full,
        3,
        40_000,
    );
    println!("  n = 2k case (n=4, X=Π): {defeat}\n");

    println!("── Lemma 15: anti-Ω cannot solve set agreement ──");
    let report = lemma15_defeat(
        &|props: &[Value]| AntiOmegaAgreementCandidate::processes(props, 5),
        n,
        20_000,
    );
    println!("  {report}");
    println!("  solo segment lengths: {:?}\n", report.segments);

    println!("── Theorem 13: the B-from-A simulation ──");
    for k in 1..=3 {
        let report = theorem13_demo(k, 4 + k as u64);
        println!("  k={k}: {report}");
    }
    println!();

    println!("── Tightness: the budgets n−1 and n−k are really used ──");
    let r = fig2_tightness(n, 5);
    println!(
        "  Figure 2 at n={n}: forced {} distinct decisions (budget {})",
        r.distinct.len(),
        r.bound
    );
    for k in 1..=n / 2 {
        let r = fig4_tightness(n, k, 6);
        println!(
            "  Figure 4 at n={n}, k={k}: forced {} distinct decisions (budget {})",
            r.distinct.len(),
            r.bound
        );
    }
}
