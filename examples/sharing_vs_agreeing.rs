//! The title of the paper, in one program: on the *same* asynchronous
//! system, agreeing (set agreement) succeeds with strictly less failure
//! information than sharing (an atomic register) requires.
//!
//! 1. **Agreeing with σ** — Figure 2 solves `(n−1)`-set agreement using
//!    only the paper's weak detector `σ`.
//! 2. **Sharing needs Σ** — the ABD emulation implements an atomic
//!    `{p,q}`-register from `Σ_{p,q}` (and we check linearizability).
//! 3. **σ cannot share** — the Lemma 7 adversary defeats a natural
//!    attempt to build `Σ_{p,q}` out of σ, exhibiting the exact run pair
//!    from the paper's proof.
//!
//! ```text
//! cargo run --example sharing_vs_agreeing
//! ```

use sih::model::OpKind;
use sih::prelude::*;
use sih::reductions::{lemma7_defeat, GossipPairCandidate};

fn main() {
    let n = 4;
    let (p, q, a) = (ProcessId(0), ProcessId(1), ProcessId(2));
    let pattern = FailurePattern::all_correct(n);

    // ── 1. Agreeing with σ ─────────────────────────────────────────────
    println!("── agreeing with σ ──");
    let sigma = Sigma::new(p, q, &pattern, 7);
    let proposals = distinct_proposals(n);
    let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    sim.run(&mut FairScheduler::new(7), &sigma, 100_000);
    check_k_set_agreement(sim.trace(), &pattern, &proposals, n - 1).unwrap();
    println!(
        "set agreement with σ: {} distinct decisions from {} values ✓ ({} messages)",
        sim.trace().distinct_decisions().len(),
        n,
        sim.trace().messages_sent()
    );

    // ── 2. Sharing with Σ ──────────────────────────────────────────────
    println!("\n── sharing with Σ_{{p,q}} ──");
    let s = ProcessSet::from_iter([p, q]);
    let sigma_s = SigmaS::new(s, &pattern, 7);
    let scripts = vec![
        vec![OpKind::Write(Value(10)), OpKind::Read],
        vec![OpKind::Read, OpKind::Write(Value(20)), OpKind::Read],
    ];
    let mut sim = Simulation::new(abd_processes(s, n, scripts), pattern.clone());
    sim.run_until(&mut FairScheduler::new(7), &sigma_s, 300_000, |sim| {
        sim.pattern().correct().iter().all(|x| sim.process(x).script_finished())
    });
    let ops = sim.trace().op_records();
    check_linearizable(&ops, None).unwrap();
    println!(
        "ABD register over Σ_{{p,q}}: {} operations, linearizable ✓ ({} messages)",
        ops.len(),
        sim.trace().messages_sent()
    );

    // ── 3. σ cannot share ─────────────────────────────────────────────
    println!("\n── σ cannot implement the register (Lemma 7) ──");
    let defeat = lemma7_defeat(
        &|| (0..n).map(|_| GossipPairCandidate::new(p, q, 16)).collect::<Vec<_>>(),
        n,
        p,
        q,
        a,
        7,
        60_000,
    );
    println!("candidate Σ_{{p,q}}-from-σ emulation defeated:");
    println!("  {defeat}");
    println!("\nsharing is harder than agreeing ∎");
}
