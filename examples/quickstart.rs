//! Quickstart: run the paper's headline algorithm (Figure 2 — set
//! agreement from the failure detector `σ`) on a simulated asynchronous
//! message-passing system, and check the result against the `k`-set
//! agreement specification.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sih::prelude::*;

fn main() {
    // A system of five processes; p3 crashes at step 40, p4 never starts.
    let n = 5;
    let pattern = FailurePattern::builder(n)
        .crash_at(ProcessId(3), Time(40))
        .crash_from_start(ProcessId(4))
        .build();
    println!("failure pattern: {pattern:?}");

    // A σ history for that pattern: the detector picks {p0, p1} as the
    // active pair; everyone else is answered ⊥.
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 42);
    println!("failure detector: {}", sigma.name());

    // Each process proposes its own value; Figure 2 must eliminate at
    // least one of the n initial values.
    let proposals = distinct_proposals(n);
    let mut sim = Simulation::new(fig2_processes(&proposals), pattern.clone());
    let outcome = sim.run(&mut FairScheduler::new(42), &sigma, 100_000);
    println!("run finished after {} steps ({:?})", outcome.steps, outcome.reason);

    for i in 0..n as u32 {
        let p = ProcessId(i);
        match sim.trace().decision_of(p) {
            Some(v) => println!("  {p} decided {v}"),
            None => println!("  {p} never decided (crashed)"),
        }
    }
    let distinct = sim.trace().distinct_decisions();
    println!(
        "distinct decisions: {} of {} initial values (≤ n−1 = {} required)",
        distinct.len(),
        n,
        n - 1
    );

    check_k_set_agreement(sim.trace(), &pattern, &proposals, n - 1)
        .expect("Figure 2 satisfies (n−1)-set agreement");
    println!("(n−1)-set agreement verified ✓");
}
