//! Reproduce the paper's Figure 1 — the summary of results — with every
//! arrow machine-checked by this library.
//!
//! ```text
//! cargo run --example hierarchy            # default: n=5, k=2
//! cargo run --example hierarchy 8 3        # custom n, k
//! ```

use sih::claims::{check_claim, Claim, ClaimConfig, Verdict};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map_or(5, |a| a.parse().expect("n must be an integer"));
    let k: usize = args.next().map_or(2, |a| a.parse().expect("k must be an integer"));
    let cfg = ClaimConfig { n, k, seeds: 2, max_steps: 200_000, ..ClaimConfig::default() };

    println!("Figure 1 — results of 'Sharing is Harder than Agreeing' (n = {n}, k = {k})\n");
    println!("{:<44} {:<30} verdict", "claim", "paper artifact");
    println!("{}", "─".repeat(100));
    for claim in Claim::ALL {
        let outcome = check_claim(claim, &cfg);
        let verdict = match &outcome.verdict {
            Verdict::Holds { runs } => format!("HOLDS across {runs} checked runs"),
            Verdict::CounterexampleExhibited { defeats } => {
                format!("IMPOSSIBLE — {} counterexample(s) exhibited", defeats.len())
            }
            Verdict::Refuted { detail } => format!("REFUTED?! {detail}"),
        };
        println!("{:<44} {:<30} {verdict}", claim.title(), claim.paper_ref());
        for note in &outcome.notes {
            println!("    · {note}");
        }
    }
}
