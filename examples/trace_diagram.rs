//! Visualize a run: the space-time diagram of Figure 2 deciding under a
//! crash, straight from a recorded trace.
//!
//! ```text
//! cargo run --example trace_diagram
//! ```

use sih::prelude::*;
use sih::runtime::{render_diagram, render_summary};

fn main() {
    let n = 4;
    let pattern = FailurePattern::builder(n).crash_at(ProcessId(1), Time(9)).build();
    let sigma = Sigma::new(ProcessId(0), ProcessId(1), &pattern, 11);
    let mut sim = Simulation::new(fig2_processes(&distinct_proposals(n)), pattern.clone());
    sim.run(&mut FairScheduler::new(11), &sigma, 50_000);

    println!("Figure 2 under {:?}\n", pattern);
    print!("{}", render_diagram(sim.trace(), &pattern));
    println!("\n{}", render_summary(sim.trace()));

    check_k_set_agreement(sim.trace(), &pattern, &distinct_proposals(n), n - 1)
        .expect("(n−1)-set agreement");
    println!("(n−1)-set agreement verified ✓");
}
