//! # sharing-is-harder
//!
//! Root crate of the *Sharing is Harder than Agreeing* (PODC 2008)
//! reproduction. It re-exports the [`sih`] facade — see that crate (or
//! the repository `README.md`) for the full tour — and hosts the
//! runnable examples (`cargo run --example quickstart`) and the
//! cross-crate integration test suites.
//!
//! ```
//! use sharing_is_harder::claims::{check_claim, Claim, ClaimConfig};
//!
//! let cfg = ClaimConfig { n: 4, k: 1, seeds: 1, max_steps: 150_000, ..ClaimConfig::default() };
//! assert!(check_claim(Claim::DecisionBudgetsAreTight, &cfg).verdict.confirmed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sih::*;
